//! The lazy-binding resolution table consulted by the runtime resolver.

use std::collections::{BTreeSet, HashMap};

use dynlink_isa::VirtAddr;

/// One import binding: everything the resolver needs when the stub for
/// `(module, import)` fires.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Index of the importing module.
    pub module: usize,
    /// Import index within that module.
    pub import: usize,
    /// The imported symbol name.
    pub symbol: String,
    /// The GOT slot to rewrite.
    pub got_slot: VirtAddr,
    /// The resolved target function address.
    pub target: VirtAddr,
    /// The lazy stub address (the GOT's initial value).
    pub stub_addr: VirtAddr,
}

/// Encodes the `(module, import)` pair a lazy stub passes to the
/// resolver in the scratch register.
pub fn stub_key(module: usize, import: usize) -> u64 {
    ((module as u64) << 20) | import as u64
}

/// Lazy-binding metadata for the whole process: per-module, per-import
/// [`Binding`]s plus the stub-key index the runtime resolver uses.
#[derive(Debug, Clone, Default)]
pub struct ResolutionTable {
    per_module: Vec<Vec<Binding>>,
    by_key: HashMap<u64, (usize, usize)>,
    /// Symbol → provider candidates `(module index, export address)` in
    /// load (interposition) order, registered by the loader. Consulted
    /// when a binding's provider module has been `dlclose`d: resolution
    /// falls through to the first still-open provider.
    providers: HashMap<String, Vec<(usize, VirtAddr)>>,
    /// Export address → owning module index, so a binding target can be
    /// attributed to a module without access to the process image.
    addr_owner: HashMap<VirtAddr, usize>,
    /// Modules currently closed by `dlclose`. A `BTreeSet` for
    /// deterministic iteration.
    closed: BTreeSet<usize>,
    /// Per-module code version, bumped on every successful
    /// [`Self::reopen_module`]: a reopened module occupies the same VA
    /// range but is a fresh identity, so anything keyed on the old
    /// generation (a prelink snapshot fingerprint, say) must miss.
    /// Sparse — modules never reopened have no entry (generation 0).
    generations: HashMap<usize, u64>,
}

impl ResolutionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ResolutionTable::default()
    }

    /// Appends one module's bindings (must be called in load order).
    pub fn push_module(&mut self, bindings: Vec<Binding>) {
        let module = self.per_module.len();
        for (import, b) in bindings.iter().enumerate() {
            debug_assert_eq!((b.module, b.import), (module, import));
            self.by_key
                .insert(stub_key(module, import), (module, import));
        }
        self.per_module.push(bindings);
    }

    /// The binding for `(module, import)`.
    pub fn binding(&self, module: usize, import: usize) -> Option<&Binding> {
        self.per_module.get(module)?.get(import)
    }

    /// Mutable access to the binding for `(module, import)` (used when a
    /// symbol is rebound to a new provider at run time).
    pub fn binding_mut(&mut self, module: usize, import: usize) -> Option<&mut Binding> {
        self.per_module.get_mut(module)?.get_mut(import)
    }

    /// The binding for a stub key (read from the scratch register when a
    /// lazy stub invokes the resolver host function).
    pub fn binding_for_key(&self, key: u64) -> Option<&Binding> {
        let &(m, i) = self.by_key.get(&key)?;
        self.binding(m, i)
    }

    /// Iterates over all bindings.
    pub fn iter(&self) -> impl Iterator<Item = &Binding> {
        self.per_module.iter().flatten()
    }

    /// Total number of bindings.
    pub fn len(&self) -> usize {
        self.per_module.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no bindings exist (e.g. static linking).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers `module` as a provider of `symbol` at `addr`. The
    /// loader calls this in load order, module by module, so each
    /// symbol's candidate list is naturally in interposition order.
    pub fn register_provider(&mut self, module: usize, symbol: &str, addr: VirtAddr) {
        self.providers
            .entry(symbol.to_owned())
            .or_default()
            .push((module, addr));
        self.addr_owner.insert(addr, module);
    }

    /// Marks `module` closed (`dlclose`): it no longer provides symbols
    /// until reopened. Returns `true` if the module was open (closing
    /// an already-closed module is a no-op).
    pub fn close_module(&mut self, module: usize) -> bool {
        self.closed.insert(module)
    }

    /// Marks `module` open again (`dlopen` of a previously closed
    /// module). Returns `true` if it was closed. A successful reopen
    /// bumps the module's [`Self::generation`]: same addresses, new
    /// identity.
    pub fn reopen_module(&mut self, module: usize) -> bool {
        let was_closed = self.closed.remove(&module);
        if was_closed {
            *self.generations.entry(module).or_insert(0) += 1;
        }
        was_closed
    }

    /// Returns `true` if `module` is currently closed.
    pub fn is_closed(&self, module: usize) -> bool {
        self.closed.contains(&module)
    }

    /// The module's code generation: 0 as loaded, incremented by every
    /// close/reopen cycle. Part of the prelink snapshot fingerprint, so
    /// a snapshot captured against the original identity cannot
    /// fingerprint-match a reopened module on addresses alone.
    pub fn generation(&self, module: usize) -> u64 {
        self.generations.get(&module).copied().unwrap_or(0)
    }

    /// The module that owns `addr` as a registered export, if any —
    /// lets snapshot builders attribute a resolved target to its
    /// provider module without access to the process image.
    pub fn owner_of(&self, addr: VirtAddr) -> Option<usize> {
        self.addr_owner.get(&addr).copied()
    }

    /// The address resolution should actually bind, given a binding's
    /// recorded `symbol` and `target`: normally `target` itself, but if
    /// the module owning `target` has been closed, the first still-open
    /// provider of `symbol` in load order wins. Falls back to `target`
    /// when no open provider exists (the caller guaranteed none was
    /// needed) or when `target` is not a registered export. Shared by
    /// the system resolvers and the oracle's inline resolver, so both
    /// sides of the difftest redirect identically.
    pub fn effective_target(&self, symbol: &str, target: VirtAddr) -> VirtAddr {
        match self.addr_owner.get(&target) {
            Some(owner) if self.closed.contains(owner) => self
                .providers
                .get(symbol)
                .and_then(|cands| cands.iter().find(|(m, _)| !self.closed.contains(m)))
                .map_or(target, |&(_, addr)| addr),
            _ => target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binding(module: usize, import: usize, sym: &str) -> Binding {
        Binding {
            module,
            import,
            symbol: sym.to_owned(),
            got_slot: VirtAddr::new(0x60_0000 + (import as u64) * 8),
            target: VirtAddr::new(0x7f00_0000 + (import as u64) * 0x100),
            stub_addr: VirtAddr::new(0x50_0000 + (import as u64) * 16),
        }
    }

    #[test]
    fn key_roundtrip() {
        let mut t = ResolutionTable::new();
        t.push_module(vec![binding(0, 0, "a"), binding(0, 1, "b")]);
        t.push_module(vec![binding(1, 0, "c")]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        let b = t.binding_for_key(stub_key(1, 0)).unwrap();
        assert_eq!(b.symbol, "c");
        let b = t.binding_for_key(stub_key(0, 1)).unwrap();
        assert_eq!(b.symbol, "b");
        assert!(t.binding_for_key(stub_key(2, 0)).is_none());
    }

    #[test]
    fn keys_do_not_collide_for_plausible_sizes() {
        // 2^20 imports per module before collision.
        assert_ne!(stub_key(0, 1), stub_key(1, 0));
        assert_ne!(stub_key(3, 7), stub_key(7, 3));
    }

    #[test]
    fn iter_covers_all() {
        let mut t = ResolutionTable::new();
        t.push_module(vec![binding(0, 0, "a")]);
        t.push_module(vec![binding(1, 0, "b"), binding(1, 1, "c")]);
        let syms: Vec<_> = t.iter().map(|b| b.symbol.as_str()).collect();
        assert_eq!(syms, vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_table() {
        let t = ResolutionTable::new();
        assert!(t.is_empty());
        assert!(t.binding(0, 0).is_none());
    }

    #[test]
    fn closed_module_redirects_to_next_open_provider() {
        let mut t = ResolutionTable::new();
        let lib1 = VirtAddr::new(0x7f00_0000);
        let shadow = VirtAddr::new(0x7f10_0000);
        t.register_provider(1, "f", lib1);
        t.register_provider(2, "f", shadow);

        // Open: the recorded target stands.
        assert_eq!(t.effective_target("f", lib1), lib1);

        assert!(t.close_module(1));
        assert!(t.is_closed(1));
        // Closing twice is a no-op.
        assert!(!t.close_module(1));
        // Closed provider: fall through to the shadow in load order.
        assert_eq!(t.effective_target("f", lib1), shadow);
        // A target already in an open module is untouched.
        assert_eq!(t.effective_target("f", shadow), shadow);
        // An unregistered target (e.g. intra-module) is untouched.
        let other = VirtAddr::new(0x1234);
        assert_eq!(t.effective_target("f", other), other);

        assert!(t.reopen_module(1));
        assert!(!t.is_closed(1));
        assert!(!t.reopen_module(1), "reopening an open module is a no-op");
        assert_eq!(t.effective_target("f", lib1), lib1);
    }

    #[test]
    fn reopen_bumps_the_generation_and_owner_is_queryable() {
        let mut t = ResolutionTable::new();
        let addr = VirtAddr::new(0x7f00_0000);
        t.register_provider(1, "f", addr);
        assert_eq!(t.owner_of(addr), Some(1));
        assert_eq!(t.owner_of(VirtAddr::new(0x1234)), None);

        assert_eq!(t.generation(1), 0);
        t.close_module(1);
        assert_eq!(t.generation(1), 0, "close alone keeps the identity");
        t.reopen_module(1);
        assert_eq!(t.generation(1), 1);
        // A no-op reopen (already open) must not bump.
        t.reopen_module(1);
        assert_eq!(t.generation(1), 1);
        t.close_module(1);
        t.reopen_module(1);
        assert_eq!(t.generation(1), 2);
        assert_eq!(t.generation(0), 0, "untouched modules stay at 0");
    }

    #[test]
    fn every_provider_closed_falls_back_to_the_recorded_target() {
        let mut t = ResolutionTable::new();
        let only = VirtAddr::new(0x7f00_0000);
        t.register_provider(1, "g", only);
        t.close_module(1);
        assert_eq!(
            t.effective_target("g", only),
            only,
            "no open provider: keep the recorded target rather than invent one"
        );
    }
}
