//! Incremental construction of [`ModuleSpec`]s.

use std::collections::HashMap;

use dynlink_isa::{Assembler, ExternRef, Reg};

use crate::{FunctionDef, IfuncDef, LinkError, ModuleSpec};

/// Handle to a function being defined, returned by
/// [`ModuleBuilder::begin_function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionHandle(usize);

/// Builds a [`ModuleSpec`]: interns imports, tracks function entry
/// points and owns the module's [`Assembler`].
///
/// # Examples
///
/// Build a library exporting `memcpy` and an application calling it:
///
/// ```
/// use dynlink_isa::{Inst, Reg};
/// use dynlink_linker::ModuleBuilder;
///
/// let mut lib = ModuleBuilder::new("libc");
/// lib.begin_function("memcpy", true);
/// lib.asm().push(Inst::Ret);
/// let libc = lib.finish()?;
///
/// let mut app = ModuleBuilder::new("app");
/// let memcpy = app.import("memcpy");
/// app.begin_function("main", true);
/// app.asm().push_call_extern(memcpy);
/// app.asm().push(Inst::Halt);
/// let app = app.finish()?;
///
/// assert_eq!(app.imports, vec!["memcpy".to_owned()]);
/// assert_eq!(libc.functions[0].name, "memcpy");
/// # Ok::<(), dynlink_linker::LinkError>(())
/// ```
#[derive(Debug)]
pub struct ModuleBuilder {
    name: String,
    asm: Assembler,
    functions: Vec<FunctionDef>,
    imports: Vec<String>,
    import_index: HashMap<String, ExternRef>,
    data_len: u64,
    data_init: Vec<(u64, u64)>,
    ifuncs: Vec<IfuncDef>,
}

impl ModuleBuilder {
    /// Creates a builder for a module called `name`.
    pub fn new(name: &str) -> Self {
        ModuleBuilder {
            name: name.to_owned(),
            asm: Assembler::new(),
            functions: Vec::new(),
            imports: Vec::new(),
            import_index: HashMap::new(),
            data_len: 0,
            data_init: Vec::new(),
            ifuncs: Vec::new(),
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Interns an imported symbol, returning its [`ExternRef`] for use
    /// with [`Assembler::push_call_extern`]. Importing the same name
    /// twice returns the same reference (one PLT slot per symbol per
    /// module, as in ELF).
    pub fn import(&mut self, symbol: &str) -> ExternRef {
        if let Some(&ext) = self.import_index.get(symbol) {
            return ext;
        }
        let ext = ExternRef(self.imports.len() as u32);
        self.imports.push(symbol.to_owned());
        self.import_index.insert(symbol.to_owned(), ext);
        ext
    }

    /// Marks the current assembler position as the entry of function
    /// `name`. Code pushed afterwards (until the next `begin_function`)
    /// forms its body.
    pub fn begin_function(&mut self, name: &str, exported: bool) -> FunctionHandle {
        let handle = FunctionHandle(self.functions.len());
        self.functions.push(FunctionDef {
            name: name.to_owned(),
            offset: self.asm.here(),
            exported,
        });
        handle
    }

    /// Direct access to the module's assembler.
    pub fn asm(&mut self) -> &mut Assembler {
        &mut self.asm
    }

    /// Reserves `len` bytes of zero-initialized data, returning the byte
    /// offset of the reservation within the module's data section (use
    /// with [`Assembler::push_lea_data`]).
    pub fn reserve_data(&mut self, len: u64) -> u64 {
        let offset = self.data_len;
        self.data_len += len;
        offset
    }

    /// Reserves 8 bytes of data initialized to `value`, returning its
    /// offset.
    pub fn data_word(&mut self, value: u64) -> u64 {
        let offset = self.reserve_data(8);
        self.data_init.push((offset, value));
        offset
    }

    /// Declares a GNU indirect function `name` choosing among
    /// `candidates` (names of functions defined in this module).
    pub fn define_ifunc(&mut self, name: &str, candidates: &[&str]) {
        self.ifuncs.push(IfuncDef {
            name: name.to_owned(),
            candidates: candidates.iter().map(|s| (*s).to_owned()).collect(),
        });
    }

    /// Emits a conventional function prologue (push frame pointer).
    pub fn emit_prologue(&mut self) {
        self.asm.push(dynlink_isa::Inst::Push { src: Reg::FP });
        self.asm.push(dynlink_isa::Inst::MovReg {
            dst: Reg::FP,
            src: Reg::SP,
        });
    }

    /// Emits the matching epilogue and return.
    pub fn emit_epilogue(&mut self) {
        self.asm.push(dynlink_isa::Inst::MovReg {
            dst: Reg::SP,
            src: Reg::FP,
        });
        self.asm.push(dynlink_isa::Inst::Pop { dst: Reg::FP });
        self.asm.push(dynlink_isa::Inst::Ret);
    }

    /// Finalizes the module.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::Asm`] if label resolution fails, and
    /// [`LinkError::DuplicateExport`] if two functions or ifuncs in this
    /// module export the same name.
    pub fn finish(self) -> Result<ModuleSpec, LinkError> {
        let mut seen = HashMap::new();
        for f in self.functions.iter().filter(|f| f.exported) {
            if seen.insert(f.name.clone(), ()).is_some() {
                return Err(LinkError::DuplicateExport {
                    module: self.name.clone(),
                    symbol: f.name.clone(),
                });
            }
        }
        for i in &self.ifuncs {
            if seen.insert(i.name.clone(), ()).is_some() {
                return Err(LinkError::DuplicateExport {
                    module: self.name.clone(),
                    symbol: i.name.clone(),
                });
            }
        }
        let code = self.asm.finish().map_err(LinkError::Asm)?;
        Ok(ModuleSpec {
            name: self.name,
            code,
            functions: self.functions,
            imports: self.imports,
            data_len: self.data_len,
            data_init: self.data_init,
            ifuncs: self.ifuncs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynlink_isa::Inst;

    #[test]
    fn import_interning_dedups() {
        let mut b = ModuleBuilder::new("app");
        let a = b.import("write");
        let c = b.import("read");
        let d = b.import("write");
        assert_eq!(a, d);
        assert_ne!(a, c);
        let spec = b.finish().unwrap();
        assert_eq!(spec.imports, vec!["write".to_owned(), "read".to_owned()]);
    }

    #[test]
    fn function_offsets_follow_cursor() {
        let mut b = ModuleBuilder::new("m");
        b.begin_function("f", true);
        b.asm().push(Inst::Nop); // 1 byte
        b.asm().push(Inst::Ret); // 1 byte
        b.begin_function("g", false);
        b.asm().push(Inst::Ret);
        let spec = b.finish().unwrap();
        assert_eq!(spec.functions[0].offset, 0);
        assert_eq!(spec.functions[1].offset, 2);
        assert!(spec.functions[0].exported);
        assert!(!spec.functions[1].exported);
    }

    #[test]
    fn duplicate_export_rejected() {
        let mut b = ModuleBuilder::new("m");
        b.begin_function("f", true);
        b.asm().push(Inst::Ret);
        b.begin_function("f", true);
        b.asm().push(Inst::Ret);
        assert!(matches!(b.finish(), Err(LinkError::DuplicateExport { .. })));
    }

    #[test]
    fn duplicate_local_names_allowed() {
        let mut b = ModuleBuilder::new("m");
        b.begin_function("f", false);
        b.asm().push(Inst::Ret);
        b.begin_function("f", false);
        b.asm().push(Inst::Ret);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn ifunc_name_conflicts_with_export() {
        let mut b = ModuleBuilder::new("m");
        b.begin_function("memcpy", true);
        b.asm().push(Inst::Ret);
        b.define_ifunc("memcpy", &["memcpy_sse", "memcpy_avx"]);
        assert!(matches!(b.finish(), Err(LinkError::DuplicateExport { .. })));
    }

    #[test]
    fn data_reservations_accumulate() {
        let mut b = ModuleBuilder::new("m");
        let a = b.reserve_data(16);
        let w = b.data_word(0xfeed);
        assert_eq!(a, 0);
        assert_eq!(w, 16);
        let spec = b.finish().unwrap();
        assert_eq!(spec.data_len, 24);
        assert_eq!(spec.data_init, vec![(16, 0xfeed)]);
    }

    #[test]
    fn prologue_epilogue_shapes() {
        let mut b = ModuleBuilder::new("m");
        b.begin_function("f", true);
        b.emit_prologue();
        b.emit_epilogue();
        let spec = b.finish().unwrap();
        assert_eq!(spec.code.len(), 5); // push, mov, mov, pop, ret
    }
}
