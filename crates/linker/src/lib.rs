//! # dynlink-linker
//!
//! An ELF-flavoured module format, static/dynamic linker and loader for
//! the `dynlink-sim` workspace.
//!
//! The crate models the machinery the paper's mechanism interacts with
//! (§2):
//!
//! * [`ModuleBuilder`] / [`ModuleSpec`] — position-independent modules
//!   (an executable and its shared libraries) with exported functions,
//!   imported symbols, a data section, and optional
//!   [ifuncs](ModuleBuilder::define_ifunc) (GNU indirect functions,
//!   §2.4.1).
//! * [`Loader`] — maps modules into a [`dynlink_mem::AddressSpace`]
//!   under a chosen [`LinkMode`]:
//!   - [`LinkMode::DynamicLazy`] — ELF-style lazy binding: each module
//!     gets a sparse PLT (16-byte entries) and a GOT; GOT slots
//!     initially point at per-import resolver stubs, and the first call
//!     resolves the symbol and rewrites the GOT **through the simulated
//!     store path**, so the proposed hardware's Bloom filter observes it.
//!   - [`LinkMode::DynamicNow`] — `BIND_NOW` eager binding.
//!   - [`LinkMode::Static`] — direct calls, no PLT/GOT (the paper's
//!     performance yardstick).
//!   - [`LinkMode::Patched`] — the paper's §4.3 software emulation:
//!     loads eagerly, then rewrites every `call plt` site to `call
//!     function`, requiring near library placement (rel32 reach), RWX
//!     text, and paying COW page copies in forked children (§5.5).
//! * [`ProcessImage`] — the loaded process: module map, symbol tables,
//!   PLT/GOT ranges (used by the CPU to classify trampoline
//!   instructions), and the [`ResolutionTable`] the runtime resolver
//!   consults, including `dlopen`/`dlclose`-style GOT unbinding.
//! * [`ResolutionSnapshot`] / [`SnapshotBuilder`] — the "stable
//!   linking" persistent resolution cache: a warmed process's lazy
//!   resolutions serialized to a versioned binary format and restored
//!   at process start, guarded by a layout/identity [`fingerprint`] and
//!   per-entry staleness validation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod image;
mod loader;
mod resolve;
mod snapshot;

pub use builder::{FunctionHandle, ModuleBuilder};
pub use error::LinkError;
pub use image::{LoadedModule, PatchSite, PltSlot, ProcessImage};
pub use loader::{
    apply_call_site_patches, LinkMode, LinkOptions, Loader, TrampolineFlavor, RESOLVER_HOST_FN,
};
pub use resolve::{Binding, ResolutionTable};
pub use snapshot::{
    fingerprint, ResolutionSnapshot, RestoreOutcome, SnapshotBuilder, SnapshotEntry, SnapshotError,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};

/// A module specification: name, code, imports, exports and data.
///
/// Produced by [`ModuleBuilder::finish`]; consumed by [`Loader::load`].
#[derive(Debug, Clone)]
pub struct ModuleSpec {
    /// Module name (e.g. `"app"`, `"libc"`).
    pub name: String,
    /// Relocatable code.
    pub code: dynlink_isa::CodeObject,
    /// Functions defined in this module, in definition order.
    pub functions: Vec<FunctionDef>,
    /// Imported symbol names; index = `ExternRef`. In declaration order,
    /// mirroring how compilers allocate PLT slots in source order (§2).
    pub imports: Vec<String>,
    /// Size of the zero-initialized data section in bytes.
    pub data_len: u64,
    /// Initial 64-bit words written into the data section at load time.
    pub data_init: Vec<(u64, u64)>,
    /// GNU indirect functions exported by this module (§2.4.1).
    pub ifuncs: Vec<IfuncDef>,
}

/// A function defined within a module.
#[derive(Debug, Clone)]
pub struct FunctionDef {
    /// Symbol name.
    pub name: String,
    /// Byte offset of the entry point within the module's text.
    pub offset: u64,
    /// Whether the symbol is visible to other modules.
    pub exported: bool,
}

/// A GNU indirect function: an exported name whose implementation is
/// chosen among candidates when it is resolved (§2.4.1).
#[derive(Debug, Clone)]
pub struct IfuncDef {
    /// Exported symbol name.
    pub name: String,
    /// Names of candidate implementations (module-local functions), in
    /// preference order indexed by the load-time hardware level.
    pub candidates: Vec<String>,
}
