//! Linking and loading errors.

use std::fmt;

use dynlink_isa::{AsmError, VirtAddr};
use dynlink_mem::MemError;

/// Errors produced while building, linking or loading modules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// Assembly failed (unbound or rebound label).
    Asm(AsmError),
    /// Two exported symbols with the same name in one module.
    DuplicateExport {
        /// The offending module.
        module: String,
        /// The duplicated symbol name.
        symbol: String,
    },
    /// Two modules with the same name were loaded.
    DuplicateModule {
        /// The duplicated module name.
        name: String,
    },
    /// An imported symbol is not exported by any loaded module.
    UnresolvedSymbol {
        /// The importing module.
        module: String,
        /// The missing symbol.
        symbol: String,
    },
    /// An ifunc candidate does not name a function in its module.
    BadIfuncCandidate {
        /// The module defining the ifunc.
        module: String,
        /// The ifunc name.
        ifunc: String,
        /// The missing candidate.
        candidate: String,
    },
    /// The requested entry symbol is not exported by the executable.
    NoEntry {
        /// The missing entry symbol.
        symbol: String,
    },
    /// Call-site patching cannot encode the target as `call rel32`
    /// (libraries loaded too far away, §2.3).
    PatchOutOfRange {
        /// The call-site address.
        site: VirtAddr,
        /// The unreachable target.
        target: VirtAddr,
    },
    /// A memory operation failed during loading.
    Mem(MemError),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Asm(e) => write!(f, "assembly failed: {e}"),
            LinkError::DuplicateExport { module, symbol } => {
                write!(f, "module `{module}` exports `{symbol}` more than once")
            }
            LinkError::DuplicateModule { name } => {
                write!(f, "module `{name}` loaded more than once")
            }
            LinkError::UnresolvedSymbol { module, symbol } => {
                write!(f, "module `{module}` imports unresolved symbol `{symbol}`")
            }
            LinkError::BadIfuncCandidate {
                module,
                ifunc,
                candidate,
            } => write!(
                f,
                "ifunc `{ifunc}` in module `{module}` names missing candidate `{candidate}`"
            ),
            LinkError::NoEntry { symbol } => {
                write!(
                    f,
                    "entry symbol `{symbol}` is not exported by the executable"
                )
            }
            LinkError::PatchOutOfRange { site, target } => write!(
                f,
                "cannot patch call at {site}: target {target} is outside rel32 range"
            ),
            LinkError::Mem(e) => write!(f, "memory error while loading: {e}"),
        }
    }
}

impl std::error::Error for LinkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LinkError::Asm(e) => Some(e),
            LinkError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for LinkError {
    fn from(e: MemError) -> Self {
        LinkError::Mem(e)
    }
}

impl From<AsmError> for LinkError {
    fn from(e: AsmError) -> Self {
        LinkError::Asm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinkError::UnresolvedSymbol {
            module: "app".into(),
            symbol: "printf".into(),
        };
        assert!(e.to_string().contains("printf"));
        assert!(e.to_string().contains("app"));

        let e = LinkError::PatchOutOfRange {
            site: VirtAddr::new(0x400000),
            target: VirtAddr::new(0x7f00_0000_0000),
        };
        assert!(e.to_string().contains("rel32"));
    }

    #[test]
    fn conversions() {
        let m: LinkError = MemError::Unmapped {
            addr: VirtAddr::new(4),
        }
        .into();
        assert!(matches!(m, LinkError::Mem(_)));
        let a: LinkError = AsmError::UnboundLabel { name: "x".into() }.into();
        assert!(matches!(a, LinkError::Asm(_)));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e = LinkError::Mem(MemError::Unmapped {
            addr: VirtAddr::new(4),
        });
        assert!(e.source().is_some());
        let e = LinkError::NoEntry {
            symbol: "main".into(),
        };
        assert!(e.source().is_none());
    }
}
