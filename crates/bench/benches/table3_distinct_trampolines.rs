//! Regenerates paper Table 3 (distinct trampolines used) and benchmarks
//! the traced run that discovers them.

use criterion::{criterion_group, criterion_main, Criterion};
use dynlink_bench::experiments::{collect_all, table3, Scale};
use dynlink_core::{LinkMode, MachineConfig};
use dynlink_trace::TrampolineTracer;
use dynlink_workloads::{generate, memcached, run_workload_observed};

fn bench(c: &mut Criterion) {
    let datasets = collect_all(Scale::tiny());
    println!("\n{}", table3(&datasets));
    drop(datasets);

    let workload = generate(&memcached(), 24, 1);
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("traced_baseline_run", |b| {
        b.iter(|| {
            let tracer = TrampolineTracer::shared();
            run_workload_observed(
                &workload,
                MachineConfig::baseline(),
                LinkMode::DynamicLazy,
                0,
                Some(tracer.clone()),
            )
            .unwrap();
            let distinct = tracer.borrow().stats().distinct();
            distinct
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
