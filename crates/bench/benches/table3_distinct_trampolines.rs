//! Regenerates paper Table 3 (distinct trampolines used) and benchmarks
//! the traced run that discovers them.

use dynlink_bench::experiments::{collect_all, table3, Scale};
use dynlink_bench::stopwatch::Stopwatch;
use dynlink_core::{LinkMode, MachineConfig};
use dynlink_trace::TrampolineTracer;
use dynlink_workloads::{generate, memcached, run_workload_observed};

fn main() {
    let datasets = collect_all(Scale::tiny());
    println!("\n{}", table3(&datasets));
    drop(datasets);

    let workload = generate(&memcached(), 24, 1);
    let mut g = Stopwatch::group("table3");
    g.bench("traced_baseline_run", 10, || {
        let tracer = TrampolineTracer::shared();
        run_workload_observed(
            &workload,
            MachineConfig::baseline(),
            LinkMode::DynamicLazy,
            0,
            Some(tracer.clone()),
        )
        .unwrap();
        let distinct = tracer.lock().unwrap().stats().distinct();
        distinct
    });
}
