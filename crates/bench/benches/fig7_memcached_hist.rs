//! Regenerates paper Figure 7 (Memcached GET/SET processing-time
//! histograms) and benchmarks the run + histogram build.

use criterion::{criterion_group, criterion_main, Criterion};
use dynlink_bench::experiments::{collect, fig7};
use dynlink_workloads::memcached;

fn bench(c: &mut Criterion) {
    let ds = collect(&memcached(), 300, 8);
    println!("\n{}", fig7(&ds, 1000));
    let mut g = c.benchmark_group("fig7");
    g.sample_size(20);
    g.bench_function("histogram_build", |b| b.iter(|| fig7(&ds, 1000).rows.len()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
