//! Regenerates paper Figure 7 (Memcached GET/SET processing-time
//! histograms) and benchmarks the run + histogram build.

use dynlink_bench::experiments::{collect, fig7};
use dynlink_bench::stopwatch::Stopwatch;
use dynlink_workloads::memcached;

fn main() {
    let ds = collect(&memcached(), 300, 8);
    println!("\n{}", fig7(&ds, 1000));
    let mut g = Stopwatch::group("fig7");
    g.bench("histogram_build", 20, || fig7(&ds, 1000).rows.len());
}
