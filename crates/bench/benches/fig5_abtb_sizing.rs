//! Regenerates paper Figure 5 (% trampolines skipped vs ABTB size) and
//! benchmarks the trace replay.

use dynlink_bench::experiments::{collect, collect_all, fig5, Scale};
use dynlink_bench::stopwatch::Stopwatch;
use dynlink_trace::abtb_skip_fraction;
use dynlink_workloads::apache;

fn main() {
    let datasets = collect_all(Scale::tiny());
    let sizes = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    println!("\n{}", fig5(&datasets, &sizes));
    drop(datasets);

    let ds = collect(&apache(), 48, 2);
    let mut g = Stopwatch::group("fig5");
    g.bench("replay_16_entries", 20, || {
        abtb_skip_fraction(&ds.sequence, 16)
    });
    g.bench("replay_256_entries", 20, || {
        abtb_skip_fraction(&ds.sequence, 256)
    });
}
