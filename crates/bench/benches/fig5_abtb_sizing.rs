//! Regenerates paper Figure 5 (% trampolines skipped vs ABTB size) and
//! benchmarks the trace replay.

use criterion::{criterion_group, criterion_main, Criterion};
use dynlink_bench::experiments::{collect, collect_all, fig5, Scale};
use dynlink_trace::abtb_skip_fraction;
use dynlink_workloads::apache;

fn bench(c: &mut Criterion) {
    let datasets = collect_all(Scale::tiny());
    let sizes = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    println!("\n{}", fig5(&datasets, &sizes));
    drop(datasets);

    let ds = collect(&apache(), 48, 2);
    let mut g = c.benchmark_group("fig5");
    g.sample_size(20);
    g.bench_function("replay_16_entries", |b| {
        b.iter(|| abtb_skip_fraction(&ds.sequence, 16))
    });
    g.bench_function("replay_256_entries", |b| {
        b.iter(|| abtb_skip_fraction(&ds.sequence, 256))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
