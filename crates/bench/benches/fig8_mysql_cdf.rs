//! Regenerates paper Figure 8 / Table 6 (MySQL New Order & Payment
//! response-time distributions) and benchmarks the MySQL model run.

use criterion::{criterion_group, criterion_main, Criterion};
use dynlink_bench::experiments::{collect, fig8_table6};
use dynlink_core::{LinkMode, MachineConfig};
use dynlink_workloads::{generate, mysql, run_workload};

fn bench(c: &mut Criterion) {
    let ds = collect(&mysql(), 120, 6);
    println!("\n{}", fig8_table6(&ds));
    drop(ds);

    let workload = generate(&mysql(), 16, 1);
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("mysql_run", |b| {
        b.iter(|| {
            run_workload(&workload, MachineConfig::enhanced(), LinkMode::DynamicLazy).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
