//! Regenerates paper Figure 8 / Table 6 (MySQL New Order & Payment
//! response-time distributions) and benchmarks the MySQL model run.

use dynlink_bench::experiments::{collect, fig8_table6};
use dynlink_bench::stopwatch::Stopwatch;
use dynlink_core::{LinkMode, MachineConfig};
use dynlink_workloads::{generate, mysql, run_workload};

fn main() {
    let ds = collect(&mysql(), 120, 6);
    println!("\n{}", fig8_table6(&ds));
    drop(ds);

    let workload = generate(&mysql(), 16, 1);
    let mut g = Stopwatch::group("fig8");
    g.bench("mysql_run", 10, || {
        run_workload(&workload, MachineConfig::enhanced(), LinkMode::DynamicLazy).unwrap()
    });
}
