//! Regenerates paper Figure 4 (trampoline rank-frequency series) and
//! benchmarks the rank-frequency analysis.

use dynlink_bench::experiments::{collect, collect_all, fig4, Scale};
use dynlink_bench::stopwatch::Stopwatch;
use dynlink_workloads::memcached;

fn main() {
    let datasets = collect_all(Scale::tiny());
    println!("\n{}", fig4(&datasets));
    drop(datasets);

    let ds = collect(&memcached(), 64, 2);
    let mut g = Stopwatch::group("fig4");
    g.bench("rank_frequency_analysis", 20, || {
        let rf = ds.stats.rank_frequency();
        (rf.len(), ds.stats.coverage_count(0.5))
    });
}
