//! Regenerates paper Figure 4 (trampoline rank-frequency series) and
//! benchmarks the rank-frequency analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use dynlink_bench::experiments::{collect, collect_all, fig4, Scale};
use dynlink_workloads::memcached;

fn bench(c: &mut Criterion) {
    let datasets = collect_all(Scale::tiny());
    println!("\n{}", fig4(&datasets));
    drop(datasets);

    let ds = collect(&memcached(), 64, 2);
    let mut g = c.benchmark_group("fig4");
    g.sample_size(20);
    g.bench_function("rank_frequency_analysis", |b| {
        b.iter(|| {
            let rf = ds.stats.rank_frequency();
            (rf.len(), ds.stats.coverage_count(0.5))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
