//! Regenerates paper Figure 6 (Apache/SPECweb response-time CDFs) and
//! benchmarks the request-latency collection.

use criterion::{criterion_group, criterion_main, Criterion};
use dynlink_bench::experiments::{collect, fig6};
use dynlink_core::{LinkMode, MachineConfig};
use dynlink_workloads::{apache, generate, run_workload_warm};

fn bench(c: &mut Criterion) {
    let ds = collect(&apache(), 150, 6);
    println!("\n{}", fig6(&ds));
    drop(ds);

    let workload = generate(&apache(), 24, 1);
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("apache_latency_run", |b| {
        b.iter(|| {
            run_workload_warm(
                &workload,
                MachineConfig::enhanced(),
                LinkMode::DynamicLazy,
                2,
            )
            .unwrap()
            .total_requests()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
