//! Regenerates paper Figure 6 (Apache/SPECweb response-time CDFs) and
//! benchmarks the request-latency collection.

use dynlink_bench::experiments::{collect, fig6};
use dynlink_bench::stopwatch::Stopwatch;
use dynlink_core::{LinkMode, MachineConfig};
use dynlink_workloads::{apache, generate, run_workload_warm};

fn main() {
    let ds = collect(&apache(), 150, 6);
    println!("\n{}", fig6(&ds));
    drop(ds);

    let workload = generate(&apache(), 24, 1);
    let mut g = Stopwatch::group("fig6");
    g.bench("apache_latency_run", 10, || {
        run_workload_warm(
            &workload,
            MachineConfig::enhanced(),
            LinkMode::DynamicLazy,
            2,
        )
        .unwrap()
        .total_requests()
    });
}
