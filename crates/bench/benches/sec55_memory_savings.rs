//! Regenerates the paper's §5.5 memory-savings analysis and benchmarks
//! the fork+patch accounting.

use dynlink_bench::memsave::memory_savings;
use dynlink_bench::stopwatch::Stopwatch;
use dynlink_workloads::{apache, memcached};

fn main() {
    println!("\n{}\n", memory_savings(&apache(), 100));

    let mut g = Stopwatch::group("sec55");
    g.bench("fork_and_patch_memcached", 10, || {
        memory_savings(&memcached(), 4).pages_copied_per_worker
    });
}
