//! Regenerates the paper's §5.5 memory-savings analysis and benchmarks
//! the fork+patch accounting.

use criterion::{criterion_group, criterion_main, Criterion};
use dynlink_bench::memsave::memory_savings;
use dynlink_workloads::{apache, memcached};

fn bench(c: &mut Criterion) {
    println!("\n{}\n", memory_savings(&apache(), 100));

    let mut g = c.benchmark_group("sec55");
    g.sample_size(10);
    g.bench_function("fork_and_patch_memcached", |b| {
        b.iter(|| memory_savings(&memcached(), 4).pages_copied_per_worker)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
