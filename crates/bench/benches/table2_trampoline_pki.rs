//! Regenerates paper Table 2 (trampoline instructions per
//! kilo-instruction) and benchmarks the baseline measurement run.

use criterion::{criterion_group, criterion_main, Criterion};
use dynlink_bench::experiments::{collect, collect_all, table2, Scale};
use dynlink_core::{LinkMode, MachineConfig};
use dynlink_workloads::{generate, memcached, run_workload};

fn bench(c: &mut Criterion) {
    let datasets = collect_all(Scale::tiny());
    println!("\n{}", table2(&datasets));
    drop(datasets);

    let workload = generate(&memcached(), 24, 1);
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("memcached_baseline_run", |b| {
        b.iter(|| {
            run_workload(&workload, MachineConfig::baseline(), LinkMode::DynamicLazy).unwrap()
        })
    });
    g.bench_function("collect_dataset_memcached", |b| {
        b.iter(|| collect(&memcached(), 24, 2))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
