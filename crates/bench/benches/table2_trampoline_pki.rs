//! Regenerates paper Table 2 (trampoline instructions per
//! kilo-instruction) and benchmarks the baseline measurement run.

use dynlink_bench::experiments::{collect, collect_all, table2, Scale};
use dynlink_bench::stopwatch::Stopwatch;
use dynlink_core::{LinkMode, MachineConfig};
use dynlink_workloads::{generate, memcached, run_workload};

fn main() {
    let datasets = collect_all(Scale::tiny());
    println!("\n{}", table2(&datasets));
    drop(datasets);

    let workload = generate(&memcached(), 24, 1);
    let mut g = Stopwatch::group("table2");
    g.bench("memcached_baseline_run", 10, || {
        run_workload(&workload, MachineConfig::baseline(), LinkMode::DynamicLazy).unwrap()
    });
    g.bench("collect_dataset_memcached", 10, || {
        collect(&memcached(), 24, 2)
    });
}
