//! Regenerates paper Table 4 (performance counters, base vs enhanced)
//! and benchmarks the enhanced-machine run.

use dynlink_bench::experiments::{collect_all, table4, Scale};
use dynlink_bench::stopwatch::Stopwatch;
use dynlink_core::{LinkMode, MachineConfig};
use dynlink_workloads::{apache, generate, run_workload};

fn main() {
    let datasets = collect_all(Scale::tiny());
    println!("\n{}", table4(&datasets));
    drop(datasets);

    let workload = generate(&apache(), 24, 1);
    let mut g = Stopwatch::group("table4");
    g.bench("apache_baseline", 10, || {
        run_workload(&workload, MachineConfig::baseline(), LinkMode::DynamicLazy).unwrap()
    });
    g.bench("apache_enhanced", 10, || {
        run_workload(&workload, MachineConfig::enhanced(), LinkMode::DynamicLazy).unwrap()
    });
}
