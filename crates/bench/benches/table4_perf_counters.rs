//! Regenerates paper Table 4 (performance counters, base vs enhanced)
//! and benchmarks the enhanced-machine run.

use criterion::{criterion_group, criterion_main, Criterion};
use dynlink_bench::experiments::{collect_all, table4, Scale};
use dynlink_core::{LinkMode, MachineConfig};
use dynlink_workloads::{apache, generate, run_workload};

fn bench(c: &mut Criterion) {
    let datasets = collect_all(Scale::tiny());
    println!("\n{}", table4(&datasets));
    drop(datasets);

    let workload = generate(&apache(), 24, 1);
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("apache_baseline", |b| {
        b.iter(|| {
            run_workload(&workload, MachineConfig::baseline(), LinkMode::DynamicLazy).unwrap()
        })
    });
    g.bench_function("apache_enhanced", |b| {
        b.iter(|| {
            run_workload(&workload, MachineConfig::enhanced(), LinkMode::DynamicLazy).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
