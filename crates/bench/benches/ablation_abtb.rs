//! Ablation studies beyond the paper's headline configuration:
//!
//! * ABTB capacity sweep on real machine runs (complements the Figure 5
//!   trace replay);
//! * the §3.4 no-Bloom variant vs the Bloom-guarded design;
//! * context-switch policy (flush vs ASID-tagged retention, §3.3);
//! * ARM-flavoured multi-instruction trampolines (Figure 2b).

use dynlink_bench::stopwatch::Stopwatch;
use dynlink_core::{LinkAccel, LinkMode, MachineConfig, SystemBuilder, TrampolineFlavor};
use dynlink_workloads::{generate, memcached, run_workload_warm};

fn print_ablation_table() {
    let workload = generate(&memcached(), 240, 3);
    let base = run_workload_warm(
        &workload,
        MachineConfig::baseline(),
        LinkMode::DynamicLazy,
        8,
    )
    .unwrap();

    println!("\nAblation: memcached, 240 requests (cycles lower is better)");
    println!(
        "{:<34} {:>12} {:>10} {:>9}",
        "configuration", "cycles", "skipped", "saved"
    );
    println!(
        "{:<34} {:>12} {:>10} {:>9}",
        "baseline (no ABTB)", base.counters.cycles, 0, "-"
    );

    let row = |label: &str, cfg: MachineConfig| {
        let run = run_workload_warm(&workload, cfg, LinkMode::DynamicLazy, 8).unwrap();
        let saved = 100.0 * (base.counters.cycles as f64 - run.counters.cycles as f64)
            / base.counters.cycles as f64;
        println!(
            "{:<34} {:>12} {:>10} {:>+8.2}%",
            label, run.counters.cycles, run.counters.trampolines_skipped, saved
        );
    };

    for entries in [4usize, 16, 64, 128, 256] {
        row(
            &format!("ABTB {entries} entries + Bloom"),
            MachineConfig::enhanced().with_abtb_entries(entries),
        );
    }
    row(
        "ABTB 128, no Bloom (sec 3.4)",
        MachineConfig::enhanced_no_bloom(),
    );
    let mut asid = MachineConfig::enhanced();
    asid.flush_abtb_on_context_switch = false;
    row("ABTB 128, ASID-tagged", asid);
    let mut small_bloom = MachineConfig::enhanced();
    small_bloom.bloom_bits = 64;
    row("ABTB 128, 64-bit Bloom", small_bloom);
    let mut bimodal = MachineConfig::enhanced();
    bimodal.bpred_history_bits = 0;
    row("ABTB 128, bimodal predictor", bimodal);
    let mut prefetch = MachineConfig::enhanced();
    prefetch.icache_next_line_prefetch = true;
    row("ABTB 128 + next-line prefetch", prefetch);
}

fn main() {
    print_ablation_table();

    // ARM-flavour trampoline cost comparison as a measured benchmark.
    let mut g = Stopwatch::group("ablation");
    for (label, flavor) in [
        ("x86_trampolines", TrampolineFlavor::X86),
        ("arm_trampolines", TrampolineFlavor::Arm),
    ] {
        g.bench(label, 10, || {
            let mut system = SystemBuilder::new()
                .module(dynlink_repro_helpers::calling_app("inc", 2000))
                .module(dynlink_repro_helpers::adder_library("libinc", "inc", 1))
                .accel(LinkAccel::Abtb)
                .trampoline_flavor(flavor)
                .build()
                .unwrap();
            system.run(10_000_000).unwrap();
            system.counters().cycles
        });
    }
}

/// Local copies of the umbrella-crate helpers (the bench crate cannot
/// depend on the root package).
mod dynlink_repro_helpers {
    use dynlink_isa::{Inst, Reg};
    use dynlink_linker::{ModuleBuilder, ModuleSpec};

    pub fn adder_library(module: &str, name: &str, delta: u64) -> ModuleSpec {
        let mut lib = ModuleBuilder::new(module);
        lib.begin_function(name, true);
        lib.asm().push(Inst::add_imm(Reg::R0, delta));
        lib.asm().push(Inst::Ret);
        lib.finish().unwrap()
    }

    pub fn calling_app(callee: &str, iterations: u64) -> ModuleSpec {
        let mut app = ModuleBuilder::new("app");
        let f = app.import(callee);
        app.begin_function("main", true);
        let top = app.asm().fresh_label("top");
        app.asm().push(Inst::mov_imm(Reg::R2, iterations));
        app.asm().bind(top);
        app.asm().push_call_extern(f);
        app.asm().push(Inst::sub_imm(Reg::R2, 1));
        app.asm().push_branch_nz(Reg::R2, top);
        app.asm().push(Inst::Halt);
        app.finish().unwrap()
    }
}
