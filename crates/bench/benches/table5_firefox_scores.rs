//! Regenerates paper Table 5 (Firefox Peacekeeper scores) and benchmarks
//! the Firefox kernel run.

use criterion::{criterion_group, criterion_main, Criterion};
use dynlink_bench::experiments::{collect, table5};
use dynlink_core::{LinkMode, MachineConfig};
use dynlink_workloads::{firefox, generate, run_workload};

fn bench(c: &mut Criterion) {
    let ds = collect(&firefox(), 150, 6);
    println!("\n{}", table5(&ds));
    drop(ds);

    let workload = generate(&firefox(), 15, 1);
    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    g.bench_function("firefox_kernel_run", |b| {
        b.iter(|| {
            run_workload(&workload, MachineConfig::enhanced(), LinkMode::DynamicLazy).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
