//! Regenerates paper Table 5 (Firefox Peacekeeper scores) and benchmarks
//! the Firefox kernel run.

use dynlink_bench::experiments::{collect, table5};
use dynlink_bench::stopwatch::Stopwatch;
use dynlink_core::{LinkMode, MachineConfig};
use dynlink_workloads::{firefox, generate, run_workload};

fn main() {
    let ds = collect(&firefox(), 150, 6);
    println!("\n{}", table5(&ds));
    drop(ds);

    let workload = generate(&firefox(), 15, 1);
    let mut g = Stopwatch::group("table5");
    g.bench("firefox_kernel_run", 10, || {
        run_workload(&workload, MachineConfig::enhanced(), LinkMode::DynamicLazy).unwrap()
    });
}
