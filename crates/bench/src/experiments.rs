//! Data collection and per-table/figure experiment drivers.

use std::fmt;

use dynlink_core::{LinkMode, MachineConfig, PerfCounters};
use dynlink_isa::VirtAddr;
use dynlink_trace::{abtb_skip_percentages, lock_recovering, TrampolineStats, TrampolineTracer};
use dynlink_uarch::ABTB_ENTRY_BYTES;
use dynlink_workloads::{
    apache, firefox, generate, memcached, mysql, run_workload_observed, WorkloadProfile,
    WorkloadRun,
};

/// Experiment sizing: requests per workload and warmup requests per
/// request type.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Requests for the Apache/SPECweb model.
    pub apache: u64,
    /// Requests (kernel iterations) for the Firefox/Peacekeeper model.
    pub firefox: u64,
    /// Requests for the Memcached model.
    pub memcached: u64,
    /// Requests for the MySQL/TPC-C model.
    pub mysql: u64,
    /// Warmup requests per request type excluded from steady-state
    /// numbers.
    pub warmup: u64,
}

impl Scale {
    /// A quick scale for tests and bench setup (seconds).
    pub fn quick() -> Scale {
        Scale {
            apache: 360,
            firefox: 300,
            memcached: 600,
            mysql: 300,
            warmup: 8,
        }
    }

    /// A tiny scale for bench setup (sub-second per workload).
    pub fn tiny() -> Scale {
        Scale {
            apache: 120,
            firefox: 100,
            memcached: 150,
            mysql: 100,
            warmup: 4,
        }
    }

    /// The full scale used by `repro` (minutes): enough requests for
    /// complete tail-trampoline coverage in every workload.
    pub fn full() -> Scale {
        Scale {
            apache: 1800,
            firefox: 2600,
            memcached: 3000,
            mysql: 1600,
            warmup: 32,
        }
    }

    fn requests_for(&self, name: &str) -> u64 {
        match name {
            "apache" => self.apache,
            "firefox" => self.firefox,
            "memcached" => self.memcached,
            "mysql" => self.mysql,
            _ => self.memcached,
        }
    }
}

/// Everything measured for one workload: a traced baseline run and an
/// enhanced (ABTB) run over identical inputs.
#[derive(Debug, Clone)]
pub struct WorkloadDataset {
    /// Workload name.
    pub name: String,
    /// Paper-calibrated profile the run was generated from.
    pub profile: WorkloadProfile,
    /// Baseline (accelerator off) run.
    pub base: WorkloadRun,
    /// Enhanced (ABTB + Bloom) run.
    pub enhanced: WorkloadRun,
    /// Per-trampoline statistics from the baseline trace.
    pub stats: TrampolineStats,
    /// Trampoline access sequence from the baseline trace.
    pub sequence: Vec<VirtAddr>,
}

/// Collects one workload's dataset at the given request count.
///
/// # Panics
///
/// Panics if the simulation faults — generated workloads are expected
/// to run to completion.
pub fn collect(profile: &WorkloadProfile, requests: u64, warmup: u64) -> WorkloadDataset {
    let workload = generate(profile, requests, 0xd1e5e1);
    let tracer = TrampolineTracer::shared();
    let base = run_workload_observed(
        &workload,
        MachineConfig::baseline(),
        LinkMode::DynamicLazy,
        warmup,
        Some(tracer.clone()),
    )
    .expect("baseline run completes");
    let enhanced = run_workload_observed(
        &workload,
        MachineConfig::enhanced(),
        LinkMode::DynamicLazy,
        warmup,
        None,
    )
    .expect("enhanced run completes");
    // The parallel runner isolates cell panics; a panicking observed run
    // would poison this mutex, so recover the guard instead of
    // propagating a second panic out of the reporting path.
    let tracer = lock_recovering(&tracer);
    WorkloadDataset {
        name: profile.name.clone(),
        profile: profile.clone(),
        base,
        enhanced,
        stats: tracer.stats(),
        sequence: tracer.sequence().to_vec(),
    }
}

/// Collects all four paper workloads serially (the reference path the
/// parallel collector is checked against).
pub fn collect_all(scale: Scale) -> Vec<WorkloadDataset> {
    [apache(), firefox(), memcached(), mysql()]
        .iter()
        .map(|p| collect(p, scale.requests_for(&p.name), scale.warmup))
        .collect()
}

/// Collects all four paper workloads on `jobs` worker threads.
///
/// Each workload's traced baseline run and enhanced run are independent
/// simulations, so the matrix shards into 8 cells. Results are stitched
/// back in workload order; every simulation uses the same fixed seeds
/// as [`collect`], so the output is bit-identical to the serial path at
/// any `jobs` level.
pub fn collect_all_jobs(scale: Scale, jobs: usize) -> Vec<WorkloadDataset> {
    use crate::runner::{Cell, CellCtx, ParallelRunner};

    /// One half of a dataset: either the traced baseline or the
    /// enhanced run.
    enum Half {
        Base(WorkloadRun, TrampolineStats, Vec<VirtAddr>),
        Enhanced(WorkloadRun),
    }

    let profiles = [apache(), firefox(), memcached(), mysql()];
    let mut cells: Vec<Cell<Half>> = Vec::new();
    for profile in &profiles {
        let requests = scale.requests_for(&profile.name);
        let warmup = scale.warmup;
        let base_profile = profile.clone();
        cells.push(Cell::new(
            format!("collect:{}:base", profile.name),
            move |ctx: &mut CellCtx| {
                let workload = generate(&base_profile, requests, 0xd1e5e1);
                let tracer = TrampolineTracer::shared();
                let run = run_workload_observed(
                    &workload,
                    MachineConfig::baseline(),
                    LinkMode::DynamicLazy,
                    warmup,
                    Some(tracer.clone()),
                )
                .expect("baseline run completes");
                ctx.record_counters(&run.counters);
                let tracer = lock_recovering(&tracer);
                Half::Base(run, tracer.stats(), tracer.sequence().to_vec())
            },
        ));
        let enh_profile = profile.clone();
        cells.push(Cell::new(
            format!("collect:{}:enhanced", profile.name),
            move |ctx: &mut CellCtx| {
                let workload = generate(&enh_profile, requests, 0xd1e5e1);
                let run = run_workload_observed(
                    &workload,
                    MachineConfig::enhanced(),
                    LinkMode::DynamicLazy,
                    warmup,
                    None,
                )
                .expect("enhanced run completes");
                ctx.record_counters(&run.counters);
                Half::Enhanced(run)
            },
        ));
    }

    let mut halves = ParallelRunner::new(jobs).run(0xd1e5e1, cells).into_values();
    profiles
        .iter()
        .map(|profile| {
            let (base, stats, sequence) = match halves.next().map(|o| o.unwrap()) {
                Some(Half::Base(run, stats, seq)) => (run, stats, seq),
                _ => unreachable!("cells alternate base/enhanced per workload"),
            };
            let enhanced = match halves.next().map(|o| o.unwrap()) {
                Some(Half::Enhanced(run)) => run,
                _ => unreachable!("cells alternate base/enhanced per workload"),
            };
            WorkloadDataset {
                name: profile.name.clone(),
                profile: profile.clone(),
                base,
                enhanced,
                stats,
                sequence,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// Table 2: trampoline instructions per kilo-instruction.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// `(workload, measured PKI, paper PKI)`.
    pub rows: Vec<(String, f64, f64)>,
}

/// Regenerates Table 2 from collected datasets.
pub fn table2(datasets: &[WorkloadDataset]) -> Table2 {
    Table2 {
        rows: datasets
            .iter()
            .map(|d| {
                (
                    d.name.clone(),
                    d.base.counters.pki(d.base.counters.trampoline_instructions),
                    d.profile.trampoline_pki,
                )
            })
            .collect(),
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2. Instructions in trampoline per kilo instruction"
        )?;
        writeln!(
            f,
            "{:<12} {:>14} {:>12}",
            "Workload", "Measured PKI", "Paper PKI"
        )?;
        for (name, got, paper) in &self.rows {
            writeln!(f, "{name:<12} {got:>14.2} {paper:>12.2}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------------

/// Table 3: distinct trampolines used.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// `(workload, measured distinct, paper distinct)`.
    pub rows: Vec<(String, usize, usize)>,
}

/// Regenerates Table 3 from collected datasets.
pub fn table3(datasets: &[WorkloadDataset]) -> Table3 {
    Table3 {
        rows: datasets
            .iter()
            .map(|d| {
                (
                    d.name.clone(),
                    d.stats.distinct(),
                    d.profile.distinct_trampolines,
                )
            })
            .collect(),
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 3. Number of distinct trampolines used")?;
        writeln!(f, "{:<12} {:>10} {:>10}", "Workload", "Measured", "Paper")?;
        for (name, got, paper) in &self.rows {
            writeln!(f, "{name:<12} {got:>10} {paper:>10}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------------

/// Figure 4: trampoline rank–frequency series (log–log decay).
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// `(workload, counts sorted descending, head covering 50% of calls)`.
    pub series: Vec<(String, Vec<u64>, usize)>,
}

/// Regenerates Figure 4 from collected datasets.
pub fn fig4(datasets: &[WorkloadDataset]) -> Fig4 {
    Fig4 {
        series: datasets
            .iter()
            .map(|d| {
                (
                    d.name.clone(),
                    d.stats.rank_frequency(),
                    d.stats.coverage_count(0.5),
                )
            })
            .collect(),
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4. Frequency of trampolines (rank -> execution count)"
        )?;
        writeln!(
            f,
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "Workload", "rank 1", "rank 10", "rank 100", "rank 1000", "distinct", "50% head"
        )?;
        for (name, counts, head) in &self.series {
            let at = |r: usize| counts.get(r).map_or(0, |c| *c);
            writeln!(
                f,
                "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
                name,
                at(0),
                at(9),
                at(99),
                at(999),
                counts.len(),
                head
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Table 4
// ---------------------------------------------------------------------------

/// One Table 4 row pair: baseline and enhanced counters for a workload.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Workload name.
    pub workload: String,
    /// Baseline counters.
    pub base: PerfCounters,
    /// Enhanced counters.
    pub enhanced: PerfCounters,
}

/// Table 4: performance counters (per kilo-instruction), base vs
/// enhanced.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// Rows in workload order.
    pub rows: Vec<Table4Row>,
}

/// Regenerates Table 4 from collected datasets.
pub fn table4(datasets: &[WorkloadDataset]) -> Table4 {
    Table4 {
        rows: datasets
            .iter()
            .map(|d| Table4Row {
                workload: d.name.clone(),
                base: d.base.counters,
                enhanced: d.enhanced.counters,
            })
            .collect(),
    }
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 4. Performance counters (values are per kilo-instruction)"
        )?;
        writeln!(
            f,
            "{:<22} {}",
            "Counter",
            self.rows
                .iter()
                .map(|r| format!("{:>11}-base {:>11}-enh", r.workload, r.workload))
                .collect::<Vec<_>>()
                .join(" ")
        )?;
        type Getter = fn(&PerfCounters) -> u64;
        let metrics: [(&str, Getter); 5] = [
            ("I-$ misses", |c| c.icache_misses),
            ("I-TLB misses", |c| c.itlb_misses),
            ("D-$ misses", |c| c.dcache_misses),
            ("D-TLB misses", |c| c.dtlb_misses),
            ("Branch mispredict", |c| c.branch_mispredictions),
        ];
        for (label, get) in metrics {
            write!(f, "{label:<22}")?;
            for r in &self.rows {
                write!(
                    f,
                    " {:>16.3} {:>15.3}",
                    r.base.pki(get(&r.base)),
                    r.enhanced.pki(get(&r.enhanced))
                )?;
            }
            writeln!(f)?;
        }
        write!(f, "{:<22}", "IPC")?;
        for r in &self.rows {
            write!(f, " {:>16.3} {:>15.3}", r.base.ipc(), r.enhanced.ipc())?;
        }
        writeln!(f)?;
        write!(f, "{:<22}", "Cycles saved %")?;
        for r in &self.rows {
            let saved = 100.0 * (r.base.cycles as f64 - r.enhanced.cycles as f64)
                / r.base.cycles.max(1) as f64;
            write!(f, " {:>16} {:>14.2}%", "", saved)?;
        }
        writeln!(f)
    }
}

// ---------------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------------

/// Figure 5: % of trampoline executions skipped vs ABTB capacity.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// ABTB capacities swept.
    pub sizes: Vec<usize>,
    /// `(workload, skip % per capacity)`.
    pub series: Vec<(String, Vec<(usize, f64)>)>,
}

/// Regenerates Figure 5 by replaying baseline trampoline traces through
/// LRU ABTBs of each capacity.
pub fn fig5(datasets: &[WorkloadDataset], sizes: &[usize]) -> Fig5 {
    Fig5 {
        sizes: sizes.to_vec(),
        series: datasets
            .iter()
            .map(|d| (d.name.clone(), abtb_skip_percentages(&d.sequence, sizes)))
            .collect(),
    }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 5. Percentage of library function call trampolines skipped vs ABTB size"
        )?;
        write!(f, "{:<12}", "Workload")?;
        for s in &self.sizes {
            write!(f, " {s:>8}")?;
        }
        writeln!(f)?;
        for (name, pcts) in &self.series {
            write!(f, "{name:<12}")?;
            for (_, p) in pcts {
                write!(f, " {p:>7.1}%")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 6 (Apache CDFs) — shared latency-table machinery
// ---------------------------------------------------------------------------

/// Latency quantiles for one request type, base vs enhanced.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Request-type name.
    pub request: String,
    /// Quantiles measured (parallel to `base`/`enhanced`).
    pub quantiles: Vec<f64>,
    /// Baseline latency (cycles) at each quantile.
    pub base: Vec<u64>,
    /// Enhanced latency (cycles) at each quantile.
    pub enhanced: Vec<u64>,
    /// Mean improvement of the enhanced machine, in percent.
    pub mean_improvement_pct: f64,
}

/// A per-request-type latency comparison (Figures 6–8, Table 6).
#[derive(Debug, Clone)]
pub struct LatencyTable {
    /// Table caption.
    pub title: String,
    /// One row per request type.
    pub rows: Vec<LatencyRow>,
}

/// Builds a latency table from a dataset at the given quantiles.
pub fn latency_table(dataset: &WorkloadDataset, title: &str, quantiles: &[f64]) -> LatencyTable {
    let rows = dataset
        .base
        .type_names
        .iter()
        .enumerate()
        .map(|(t, name)| {
            let base_mean = dataset.base.mean_latency(t);
            let enh_mean = dataset.enhanced.mean_latency(t);
            LatencyRow {
                request: name.clone(),
                quantiles: quantiles.to_vec(),
                base: quantiles
                    .iter()
                    .map(|&q| dataset.base.quantile_latency(t, q))
                    .collect(),
                enhanced: quantiles
                    .iter()
                    .map(|&q| dataset.enhanced.quantile_latency(t, q))
                    .collect(),
                mean_improvement_pct: 100.0 * (base_mean - enh_mean) / base_mean.max(1.0),
            }
        })
        .collect();
    LatencyTable {
        title: title.to_owned(),
        rows,
    }
}

impl fmt::Display for LatencyTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        for row in &self.rows {
            writeln!(
                f,
                "  {} (mean improvement {:+.2}%)",
                row.request, row.mean_improvement_pct
            )?;
            write!(f, "    {:<10}", "quantile")?;
            for q in &row.quantiles {
                write!(f, " {:>9.0}%", q * 100.0)?;
            }
            writeln!(f)?;
            write!(f, "    {:<10}", "base")?;
            for v in &row.base {
                write!(f, " {v:>10}")?;
            }
            writeln!(f)?;
            write!(f, "    {:<10}", "enhanced")?;
            for v in &row.enhanced {
                write!(f, " {v:>10}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Figure 6: Apache request-latency CDFs per SPECweb request type
/// (reported as quantiles; paper shows full CDF curves with ~4% mean
/// improvement and unaffected tails).
pub fn fig6(apache_ds: &WorkloadDataset) -> LatencyTable {
    latency_table(
        apache_ds,
        "Figure 6. Apache (SPECweb) response-time distribution, cycles, base vs enhanced",
        &[0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99],
    )
}

// ---------------------------------------------------------------------------
// Table 5 (Firefox / Peacekeeper)
// ---------------------------------------------------------------------------

/// Table 5: Peacekeeper-style scores (higher is better).
#[derive(Debug, Clone)]
pub struct Table5 {
    /// `(kernel, base score, enhanced score, improvement %)`. Scores are
    /// operations per simulated second at 3 GHz.
    pub rows: Vec<(String, f64, f64, f64)>,
}

/// Regenerates Table 5: each Peacekeeper kernel's score is operations
/// per simulated second (3 GHz clock over the mean request latency).
pub fn table5(firefox_ds: &WorkloadDataset) -> Table5 {
    const HZ: f64 = 3.0e9;
    let rows = firefox_ds
        .base
        .type_names
        .iter()
        .enumerate()
        .map(|(t, name)| {
            let base = HZ / firefox_ds.base.mean_latency(t).max(1.0);
            let enh = HZ / firefox_ds.enhanced.mean_latency(t).max(1.0);
            (name.clone(), base, enh, 100.0 * (enh - base) / base)
        })
        .collect();
    Table5 { rows }
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 5. Firefox Peacekeeper-style scores (ops/s, higher is better)"
        )?;
        writeln!(
            f,
            "{:<16} {:>12} {:>12} {:>8}",
            "Kernel", "Base", "Enhanced", "Delta"
        )?;
        for (name, base, enh, d) in &self.rows {
            writeln!(f, "{name:<16} {base:>12.0} {enh:>12.0} {d:>+7.2}%")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 7 (Memcached histograms)
// ---------------------------------------------------------------------------

/// Figure 7: request-processing-time histograms for Memcached GET/SET.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Histogram bucket width in cycles.
    pub bucket_cycles: u64,
    /// `(request type, base histogram, enhanced histogram, base peak
    /// bucket, enhanced peak bucket)`; histograms map bucket index →
    /// request count.
    pub rows: Vec<Fig7Row>,
}

/// One Figure 7 row: request type, both histograms and their peaks.
pub type Fig7Row = (String, Vec<(u64, u64)>, Vec<(u64, u64)>, u64, u64);

fn histogram(latencies: &[u64], bucket: u64) -> Vec<(u64, u64)> {
    let mut map = std::collections::BTreeMap::new();
    for &l in latencies {
        *map.entry(l / bucket).or_insert(0u64) += 1;
    }
    map.into_iter().collect()
}

fn peak_bucket(hist: &[(u64, u64)]) -> u64 {
    hist.iter().max_by_key(|(_, n)| *n).map_or(0, |(b, _)| *b)
}

/// Regenerates Figure 7 from the Memcached dataset.
pub fn fig7(memcached_ds: &WorkloadDataset, bucket_cycles: u64) -> Fig7 {
    let rows = memcached_ds
        .base
        .type_names
        .iter()
        .enumerate()
        .map(|(t, name)| {
            let hb = histogram(&memcached_ds.base.latencies[t], bucket_cycles);
            let he = histogram(&memcached_ds.enhanced.latencies[t], bucket_cycles);
            let (pb, pe) = (peak_bucket(&hb), peak_bucket(&he));
            (name.clone(), hb, he, pb, pe)
        })
        .collect();
    Fig7 {
        bucket_cycles,
        rows,
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7. Memcached request-processing-time histograms (bucket = {} cycles)",
            self.bucket_cycles
        )?;
        for (name, hb, he, pb, pe) in &self.rows {
            writeln!(
                f,
                "  {name} requests: peak bucket base={pb} enhanced={pe} (enhanced shifted {})",
                if pe <= pb { "left or equal" } else { "right" }
            )?;
            let buckets: std::collections::BTreeSet<u64> =
                hb.iter().chain(he.iter()).map(|(b, _)| *b).collect();
            let find =
                |h: &[(u64, u64)], b: u64| h.iter().find(|(x, _)| *x == b).map_or(0, |(_, n)| *n);
            for b in buckets {
                writeln!(
                    f,
                    "    bucket {:>6}: base {:>5} enhanced {:>5}",
                    b,
                    find(hb, b),
                    find(he, b)
                )?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 8 / Table 6 (MySQL)
// ---------------------------------------------------------------------------

/// Figure 8 + Table 6: MySQL New Order / Payment latency quantiles.
pub fn fig8_table6(mysql_ds: &WorkloadDataset) -> LatencyTable {
    latency_table(
        mysql_ds,
        "Figure 8 / Table 6. MySQL (TPC-C) response time, cycles, base vs enhanced",
        &[0.50, 0.75, 0.90, 0.95],
    )
}

// ---------------------------------------------------------------------------
// §5.3 hardware cost
// ---------------------------------------------------------------------------

/// §5.3: ABTB storage cost.
#[derive(Debug, Clone)]
pub struct HwCost {
    /// `(entries, bytes)`.
    pub rows: Vec<(usize, u64)>,
}

/// Regenerates the §5.3 storage-cost arithmetic (12 bytes per entry).
pub fn hw_cost() -> HwCost {
    HwCost {
        rows: [16usize, 32, 64, 128, 256, 512]
            .iter()
            .map(|&e| (e, e as u64 * ABTB_ENTRY_BYTES))
            .collect(),
    }
}

impl fmt::Display for HwCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Section 5.3. ABTB hardware cost (12 bytes per entry)")?;
        writeln!(f, "{:>8} {:>10}", "Entries", "Bytes")?;
        for (e, b) in &self.rows {
            writeln!(f, "{e:>8} {b:>10}")?;
        }
        writeln!(
            f,
            "Note: 16 entries = 192 B as in the paper; 128 entries is the"
        )?;
        writeln!(
            f,
            "abstract's 1.5 KB budget (the paper's '256 entries < 1.5KB' is"
        )?;
        write!(
            f,
            "inconsistent with its own 12 B/entry figure; see EXPERIMENTS.md)"
        )
    }
}

/// Multitenant co-scheduling: two different server workloads
/// time-sharing one core.
#[derive(Debug, Clone)]
pub struct Multitenant {
    /// `(policy name, total cycles, % trampolines skipped)`.
    pub rows: Vec<(String, u64, f64)>,
}

/// Co-schedules the Apache and MySQL models on one machine in
/// `quantum`-instruction slices (eager binding), comparing the baseline,
/// the flush-on-switch ABTB and the ASID-tagged ABTB. Beyond the paper:
/// shows the mechanism composes with real OS multiprogramming, where
/// processes' virtual addresses alias.
pub fn multitenant(requests: u64, quantum: u64) -> Multitenant {
    use dynlink_cpu::{Machine, ProcessContext};
    use dynlink_linker::{LinkOptions, Loader};
    use dynlink_mem::layout::STACK_TOP;
    use dynlink_mem::AddressSpace;

    let make = |profile: &dynlink_workloads::WorkloadProfile,
                asid: u64|
     -> (
        ProcessContext,
        Vec<(dynlink_isa::VirtAddr, dynlink_isa::VirtAddr)>,
    ) {
        let workload = generate(profile, requests, 0x7e7);
        let mut space = AddressSpace::new(asid);
        let image = Loader::new(LinkOptions {
            mode: LinkMode::DynamicNow,
            ..LinkOptions::default()
        })
        .load(&workload.modules, "main", &mut space)
        .expect("loads");
        let ranges = image.plt_ranges().to_vec();
        let ctx =
            ProcessContext::new(space, image.entry(), STACK_TOP, 1 << 20).expect("stack maps");
        (ctx, ranges)
    };

    let run_policy = |cfg: MachineConfig| -> (u64, f64) {
        let (mut a, ranges_a) = make(&apache(), 1);
        let (mut b, ranges_b) = make(&mysql(), 2);
        let mut ranges = ranges_a;
        ranges.extend(ranges_b);
        let mut machine = Machine::new(cfg, AddressSpace::new(99));
        machine.set_plt_ranges(&ranges);
        machine.swap_process(&mut a);
        let mut current_is_a = true;
        let (mut a_done, mut b_done) = (false, false);
        for _ in 0..1_000_000 {
            machine.run(quantum).expect("runs");
            if current_is_a {
                a_done = machine.halted();
            } else {
                b_done = machine.halted();
            }
            if a_done && b_done {
                break;
            }
            machine.swap_process(&mut b);
            current_is_a = !current_is_a;
        }
        assert!(a_done && b_done, "both workloads must finish");
        let c = machine.counters();
        let total = c.trampolines_skipped + c.trampoline_instructions;
        (
            c.cycles,
            100.0 * c.trampolines_skipped as f64 / total.max(1) as f64,
        )
    };

    let mut rows = Vec::new();
    let (cycles, skip) = run_policy(MachineConfig::baseline());
    rows.push(("baseline (no ABTB)".to_owned(), cycles, skip));
    let (cycles, skip) = run_policy(MachineConfig::enhanced());
    rows.push(("ABTB, flush on switch".to_owned(), cycles, skip));
    let mut tagged = MachineConfig::enhanced();
    tagged.flush_abtb_on_context_switch = false;
    let (cycles, skip) = run_policy(tagged);
    rows.push(("ABTB, ASID-tagged".to_owned(), cycles, skip));
    Multitenant { rows }
}

impl fmt::Display for Multitenant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Multitenant: Apache + MySQL co-scheduled on one core (eager binding)"
        )?;
        writeln!(f, "{:<26} {:>14} {:>10}", "policy", "cycles", "skipped")?;
        let base = self.rows.first().map_or(1, |r| r.1);
        for (name, cycles, skip) in &self.rows {
            let saved = 100.0 * (base as f64 - *cycles as f64) / base as f64;
            writeln!(
                f,
                "{name:<26} {cycles:>14} {skip:>9.1}%   ({saved:+.2}% vs baseline)"
            )?;
        }
        Ok(())
    }
}

/// Negative control: a compute-bound workload where the mechanism has
/// nothing to skip.
#[derive(Debug, Clone)]
pub struct NegativeControl {
    /// Baseline cycles.
    pub base_cycles: u64,
    /// Enhanced cycles.
    pub enhanced_cycles: u64,
    /// Trampolines skipped (expected tiny).
    pub skipped: u64,
}

/// Runs the compute-bound profile under both machines: with almost no
/// library calls, the enhanced machine must match the baseline within
/// noise — the hardware is off the critical path and costs nothing when
/// idle (paper §3, §6).
pub fn negative_control(requests: u64) -> NegativeControl {
    let workload = generate(&dynlink_workloads::compute_bound(), requests, 0xc0);
    let base = run_workload_observed(
        &workload,
        MachineConfig::baseline(),
        LinkMode::DynamicLazy,
        4,
        None,
    )
    .expect("runs");
    let enh = run_workload_observed(
        &workload,
        MachineConfig::enhanced(),
        LinkMode::DynamicLazy,
        4,
        None,
    )
    .expect("runs");
    NegativeControl {
        base_cycles: base.counters.cycles,
        enhanced_cycles: enh.counters.cycles,
        skipped: enh.counters.trampolines_skipped,
    }
}

impl fmt::Display for NegativeControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let delta = 100.0 * (self.base_cycles as f64 - self.enhanced_cycles as f64)
            / self.base_cycles.max(1) as f64;
        writeln!(
            f,
            "Negative control (compute-bound kernel, ~0.05 trampoline PKI)"
        )?;
        writeln!(f, "  baseline cycles : {}", self.base_cycles)?;
        writeln!(f, "  enhanced cycles : {}", self.enhanced_cycles)?;
        writeln!(f, "  delta           : {delta:+.3}%")?;
        write!(f, "  skipped         : {}", self.skipped)
    }
}

/// Sensitivity of the Apache result to machine parameters: cycles saved
/// by the ABTB across L1-I sizes and BTB sizes.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// `(icache KiB, btb entries, cycles saved %)`.
    pub rows: Vec<(u64, u32, f64)>,
}

/// Sweeps L1-I capacity and BTB capacity and reports the enhanced
/// machine's cycle savings on the Apache model under each — checking
/// that the paper's conclusion is not an artifact of one configuration.
pub fn sensitivity(requests: u64) -> Sensitivity {
    let workload = generate(&apache(), requests, 0x5e5);
    let mut rows = Vec::new();
    for icache_kib in [16u64, 32, 64] {
        for btb_entries in [512u32, 2048] {
            let mk = |accel| {
                let mut cfg = MachineConfig::baseline();
                cfg.accel = accel;
                cfg.icache.size_bytes = icache_kib * 1024;
                cfg.btb_entries = btb_entries;
                cfg
            };
            let base = run_workload_observed(
                &workload,
                mk(dynlink_core::LinkAccel::Off),
                LinkMode::DynamicLazy,
                4,
                None,
            )
            .expect("runs");
            let enh = run_workload_observed(
                &workload,
                mk(dynlink_core::LinkAccel::Abtb),
                LinkMode::DynamicLazy,
                4,
                None,
            )
            .expect("runs");
            let saved = 100.0 * (base.counters.cycles as f64 - enh.counters.cycles as f64)
                / base.counters.cycles.max(1) as f64;
            rows.push((icache_kib, btb_entries, saved));
        }
    }
    Sensitivity { rows }
}

impl fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Sensitivity: Apache cycles saved by the ABTB across machine configurations"
        )?;
        writeln!(f, "{:>10} {:>12} {:>10}", "L1-I", "BTB entries", "saved")?;
        for (kib, btb, saved) in &self.rows {
            writeln!(f, "{:>7}KiB {btb:>12} {saved:>+9.2}%", kib)?;
        }
        Ok(())
    }
}

/// §5.2 analysis: first-order vs second-order cycle savings.
#[derive(Debug, Clone)]
pub struct BreakdownReport {
    /// `(workload, base breakdown, enhanced breakdown)`.
    pub rows: Vec<(
        String,
        dynlink_cpu::CycleBreakdown,
        dynlink_cpu::CycleBreakdown,
    )>,
}

/// Measures where the enhanced machine's saved cycles come from: the
/// paper observes that for Apache "the second-order performance impact
/// of these microarchitectural improvements is actually greater than
/// the first-order impact of skipping the trampoline instructions"
/// (§5.2). First-order = base issue cost of eliminated instructions;
/// second-order = avoided miss/misprediction penalties.
pub fn cycle_breakdown(scale: Scale) -> BreakdownReport {
    use dynlink_core::SystemBuilder;

    let mut rows = Vec::new();
    for profile in [apache(), firefox(), memcached(), mysql()] {
        let requests = scale.requests_for(&profile.name);
        let workload = generate(&profile, requests, 0xbd);
        let run = |cfg: MachineConfig| {
            let mut system = SystemBuilder::new()
                .modules(workload.modules.iter().cloned())
                .machine_config(cfg)
                .build()
                .expect("loads");
            system.run(workload.run_budget()).expect("runs");
            system.machine().cycle_breakdown()
        };
        rows.push((
            profile.name.clone(),
            run(MachineConfig::baseline()),
            run(MachineConfig::enhanced()),
        ));
    }
    BreakdownReport { rows }
}

impl fmt::Display for BreakdownReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Cycle breakdown, base -> enhanced (sec 5.2 first- vs second-order savings)"
        )?;
        for (name, b, e) in &self.rows {
            let first_order = b.base.saturating_sub(e.base);
            let second_order = b.penalties().saturating_sub(e.penalties());
            writeln!(f, "  {name}:")?;
            writeln!(
                f,
                "    {:<12} {:>14} {:>14} {:>12}",
                "cause", "base", "enhanced", "saved"
            )?;
            let lines: [(&str, u64, u64); 7] = [
                ("base issue", b.base, e.base),
                ("I-$ misses", b.icache, e.icache),
                ("D-$ misses", b.dcache, e.dcache),
                ("I-TLB walks", b.itlb, e.itlb),
                ("D-TLB walks", b.dtlb, e.dtlb),
                ("mispredicts", b.mispredict, e.mispredict),
                ("resolver", b.host_call, e.host_call),
            ];
            for (label, bb, ee) in lines {
                writeln!(
                    f,
                    "    {label:<12} {bb:>14} {ee:>14} {:>12}",
                    bb as i64 - ee as i64
                )?;
            }
            writeln!(
                f,
                "    first-order (instructions) saved {first_order}, second-order (penalties) saved {second_order}{}",
                if second_order > first_order {
                    " -- second-order dominates (the paper's sec 5.2 observation)"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

/// §2.2 analysis: BTB-entry pressure of dynamic vs static linking.
#[derive(Debug, Clone)]
pub struct BtbPressureReport {
    /// `(workload, call sites, trampoline entries, other branches,
    /// overhead %)`.
    pub rows: Vec<(String, usize, usize, usize, f64)>,
}

/// Measures how many extra BTB entries dynamic linking costs each
/// workload (paper §2.2: "dynamically linked libraries occupy two
/// entries in the branch predictor tables and branch target buffers per
/// call").
pub fn btb_pressure(scale: Scale) -> BtbPressureReport {
    use dynlink_trace::BtbPressure;

    let mut rows = Vec::new();
    for profile in [apache(), firefox(), memcached(), mysql()] {
        let requests = scale.requests_for(&profile.name).min(200);
        let workload = generate(&profile, requests, 0xb7b);
        let obs = BtbPressure::shared();
        run_workload_observed(
            &workload,
            MachineConfig::baseline(),
            LinkMode::DynamicLazy,
            0,
            Some(obs.clone()),
        )
        .expect("baseline run completes");
        let p = lock_recovering(&obs);
        rows.push((
            profile.name.clone(),
            p.call_sites(),
            p.trampoline_entries(),
            p.other_branches(),
            100.0 * p.overhead_ratio(),
        ));
    }
    BtbPressureReport { rows }
}

impl fmt::Display for BtbPressureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "BTB-entry pressure of dynamic linking (sec 2.2: +1 entry per trampoline)"
        )?;
        writeln!(
            f,
            "{:<12} {:>11} {:>12} {:>14} {:>10}",
            "Workload", "call sites", "trampolines", "other branches", "overhead"
        )?;
        for (name, calls, tramps, others, pct) in &self.rows {
            writeln!(
                f,
                "{name:<12} {calls:>11} {tramps:>12} {others:>14} {pct:>9.1}%"
            )?;
        }
        Ok(())
    }
}

/// §3.3 extension: how the mechanism's benefit decays with context-switch
/// frequency, for flush-on-switch vs ASID-tagged ABTBs.
#[derive(Debug, Clone)]
pub struct SwitchSweep {
    /// `(switch period in instructions, flush-policy skip %, ASID-policy
    /// skip %)`; `u64::MAX` period = never switch.
    pub rows: Vec<(u64, f64, f64)>,
}

/// Runs the memcached model under periodic context switches, comparing
/// the default flush-on-switch ABTB with an ASID-tagged one that
/// survives switches (paper §3.3).
pub fn context_switch_sweep(requests: u64) -> SwitchSweep {
    use dynlink_core::SystemBuilder;

    let workload = dynlink_workloads::generate(&memcached(), requests, 21);
    let run_with = |period: u64, flush: bool| -> f64 {
        let mut cfg = MachineConfig::enhanced();
        cfg.flush_abtb_on_context_switch = flush;
        let mut system = SystemBuilder::new()
            .modules(workload.modules.iter().cloned())
            .machine_config(cfg)
            .build()
            .expect("loads");
        while !system.machine().halted() {
            system.run(period).expect("runs");
            if !system.machine().halted() {
                system.context_switch();
            }
        }
        let c = system.counters();
        let total = c.trampolines_skipped + c.trampoline_instructions;
        100.0 * c.trampolines_skipped as f64 / total.max(1) as f64
    };

    let mut rows = Vec::new();
    for period in [2_000u64, 10_000, 50_000, 250_000, u64::MAX] {
        rows.push((period, run_with(period, true), run_with(period, false)));
    }
    SwitchSweep { rows }
}

impl fmt::Display for SwitchSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Context-switch sweep (memcached): % trampolines skipped (sec 3.3)"
        )?;
        writeln!(
            f,
            "{:>18} {:>16} {:>16}",
            "switch period", "flush ABTB", "ASID-tagged"
        )?;
        for (period, flush, asid) in &self.rows {
            let p = if *period == u64::MAX {
                "never".to_owned()
            } else {
                format!("{period} insts")
            };
            writeln!(f, "{p:>18} {flush:>15.1}% {asid:>15.1}%")?;
        }
        Ok(())
    }
}

/// Writes gnuplot-ready TSV series for every figure into `dir`:
/// `fig4_<workload>.tsv` (rank, count), `fig5.tsv` (size, skip% per
/// workload), `fig6_<type>.tsv` / `fig8_<type>.tsv` (latency, base CDF,
/// enhanced CDF) and `fig7_<type>.tsv` (bucket, base, enhanced).
///
/// # Errors
///
/// Propagates I/O errors from writing the files.
pub fn export_figure_data(
    datasets: &[WorkloadDataset],
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    use std::io::Write;

    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut save = |name: String, contents: String| -> std::io::Result<()> {
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path)?;
        f.write_all(contents.as_bytes())?;
        written.push(path);
        Ok(())
    };

    // Figure 4: rank-frequency per workload.
    for d in datasets {
        let mut out = String::from("# rank\tcount\n");
        for (rank, count) in d.stats.rank_frequency().iter().enumerate() {
            out.push_str(&format!("{}\t{}\n", rank + 1, count));
        }
        save(format!("fig4_{}.tsv", d.name), out)?;
    }

    // Figure 5: skip% vs ABTB size, one column per workload.
    let sizes = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    let mut out = String::from("# size");
    for d in datasets {
        out.push_str(&format!("\t{}", d.name));
    }
    out.push('\n');
    let series: Vec<Vec<(usize, f64)>> = datasets
        .iter()
        .map(|d| abtb_skip_percentages(&d.sequence, &sizes))
        .collect();
    for (i, &s) in sizes.iter().enumerate() {
        out.push_str(&format!("{s}"));
        for col in &series {
            out.push_str(&format!("\t{:.2}", col[i].1));
        }
        out.push('\n');
    }
    save("fig5.tsv".to_owned(), out)?;

    // Figures 6/8: per-request-type CDFs; Figure 7: histograms.
    for d in datasets {
        for (t, ty) in d.base.type_names.iter().enumerate() {
            let slug: String = ty
                .chars()
                .map(|c| {
                    if c.is_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            let mut base = d.base.latencies[t].clone();
            let mut enh = d.enhanced.latencies[t].clone();
            base.sort_unstable();
            enh.sort_unstable();
            let mut out = String::from("# cdf_fraction\tbase_cycles\tenhanced_cycles\n");
            let n = base.len().min(enh.len());
            for i in 0..n {
                out.push_str(&format!(
                    "{:.4}\t{}\t{}\n",
                    (i + 1) as f64 / n as f64,
                    base[i],
                    enh[i]
                ));
            }
            let figure = match d.name.as_str() {
                "apache" => "fig6",
                "mysql" => "fig8",
                _ => "latency",
            };
            save(format!("{figure}_{}_{slug}.tsv", d.name), out)?;
        }
    }

    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> WorkloadDataset {
        collect(&memcached(), 96, 4)
    }

    #[test]
    fn collect_produces_consistent_dataset() {
        let d = tiny_dataset();
        assert_eq!(d.name, "memcached");
        assert!(d.base.counters.instructions > 0);
        assert!(d.enhanced.counters.trampolines_skipped > 0);
        assert!(d.stats.distinct() > 0);
        assert_eq!(d.stats.total() as usize, d.sequence.len());
    }

    #[test]
    fn table2_and_3_shapes() {
        let d = vec![tiny_dataset()];
        let t2 = table2(&d);
        assert_eq!(t2.rows.len(), 1);
        assert!(t2.rows[0].1 > 0.0);
        assert!(t2.to_string().contains("Table 2"));
        let t3 = table3(&d);
        assert!(t3.rows[0].1 > 0);
        assert!(t3.to_string().contains("Table 3"));
    }

    #[test]
    fn fig4_series_descending() {
        let d = vec![tiny_dataset()];
        let f4 = fig4(&d);
        let counts = &f4.series[0].1;
        for w in counts.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(f4.to_string().contains("Figure 4"));
    }

    #[test]
    fn table4_enhanced_not_worse_on_headline_counters() {
        let d = vec![tiny_dataset()];
        let t4 = table4(&d);
        let r = &t4.rows[0];
        assert!(r.enhanced.cycles <= r.base.cycles);
        assert!(
            r.enhanced.pki(r.enhanced.branch_mispredictions)
                <= r.base.pki(r.base.branch_mispredictions) * 1.05
        );
        assert!(t4.to_string().contains("Table 4"));
    }

    #[test]
    fn fig5_grows_with_capacity() {
        let d = vec![tiny_dataset()];
        let f5 = fig5(&d, &[1, 4, 16, 64, 256]);
        let pcts = &f5.series[0].1;
        assert!(pcts.last().unwrap().1 >= pcts.first().unwrap().1);
        // Paper: >= 75% skipped with just 16 entries.
        let at16 = pcts.iter().find(|(s, _)| *s == 16).unwrap().1;
        assert!(at16 > 75.0, "16-entry ABTB skips only {at16:.1}%");
        assert!(f5.to_string().contains("Figure 5"));
    }

    #[test]
    fn latency_tables_render() {
        let d = tiny_dataset();
        let t = latency_table(&d, "test", &[0.5, 0.95]);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows[0].base[1] >= t.rows[0].base[0]);
        assert!(t.to_string().contains("GET"));
        let f7 = fig7(&d, 500);
        assert_eq!(f7.rows.len(), 2);
        assert!(f7.to_string().contains("Figure 7"));
    }

    #[test]
    fn multitenant_policies_all_correct_and_ordered() {
        let m = multitenant(24, 3_000);
        assert_eq!(m.rows.len(), 3);
        let (base, flush, tagged) = (&m.rows[0], &m.rows[1], &m.rows[2]);
        assert_eq!(base.2, 0.0, "baseline skips nothing");
        assert!(flush.2 > 0.0);
        assert!(tagged.2 >= flush.2, "retention skips at least as much");
        assert!(tagged.1 <= base.1, "tagged ABTB never slower than baseline");
        assert!(m.to_string().contains("Multitenant"));
    }

    #[test]
    fn negative_control_is_neutral() {
        let nc = negative_control(80);
        let delta =
            (nc.base_cycles as f64 - nc.enhanced_cycles as f64).abs() / nc.base_cycles as f64;
        assert!(delta < 0.01, "compute-bound delta {delta:.4} should be ~0");
        assert!(nc.to_string().contains("Negative control"));
    }

    #[test]
    fn sensitivity_is_positive_everywhere() {
        let s = sensitivity(100);
        assert_eq!(s.rows.len(), 6);
        for &(kib, btb, saved) in &s.rows {
            assert!(
                saved > 0.0,
                "ABTB must help at L1-I {kib}K / BTB {btb}: {saved:.2}%"
            );
        }
    }

    #[test]
    fn breakdown_report_shows_savings() {
        let r = cycle_breakdown(Scale {
            apache: 80,
            firefox: 40,
            memcached: 80,
            mysql: 40,
            warmup: 0,
        });
        let (name, b, e) = &r.rows[0];
        assert_eq!(name, "apache");
        assert!(e.total() < b.total());
        assert!(r.to_string().contains("first-order"));
    }

    #[test]
    fn btb_pressure_shows_trampoline_overhead() {
        let report = btb_pressure(Scale {
            apache: 40,
            firefox: 30,
            memcached: 60,
            mysql: 30,
            warmup: 0,
        });
        let apache_row = &report.rows[0];
        assert_eq!(apache_row.0, "apache");
        assert!(apache_row.2 > 100, "hundreds of trampoline BTB entries");
        assert!(apache_row.4 > 0.0);
        assert!(report.to_string().contains("BTB-entry pressure"));
    }

    #[test]
    fn switch_sweep_shows_asid_advantage() {
        let sweep = context_switch_sweep(60);
        // Frequent flushes hurt; the ASID-tagged ABTB holds its skip
        // rate at every period.
        let (fastest_flush, fastest_asid) = (sweep.rows[0].1, sweep.rows[0].2);
        assert!(
            fastest_asid > fastest_flush,
            "{fastest_asid} vs {fastest_flush}"
        );
        // With no switches the two policies coincide (within noise).
        let last = sweep.rows.last().unwrap();
        assert!((last.1 - last.2).abs() < 5.0);
        assert!(sweep.to_string().contains("ASID"));
    }

    #[test]
    fn export_writes_tsv_series() {
        let d = vec![tiny_dataset()];
        let dir = std::env::temp_dir().join(format!("dynlink_export_{}", std::process::id()));
        let files = export_figure_data(&d, &dir).unwrap();
        assert!(files.iter().any(|p| p.file_name().unwrap() == "fig5.tsv"));
        assert!(files
            .iter()
            .any(|p| p.file_name().unwrap() == "fig4_memcached.tsv"));
        let fig5 = std::fs::read_to_string(dir.join("fig5.tsv")).unwrap();
        assert!(fig5.lines().count() > 5);
        assert!(fig5.starts_with("# size"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hw_cost_matches_paper_arithmetic() {
        let c = hw_cost();
        assert!(c.rows.contains(&(16, 192)));
        assert!(c.rows.contains(&(128, 1536)));
        assert!(c.to_string().contains("1.5 KB"));
    }
}
