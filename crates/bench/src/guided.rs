//! Coverage-guided mutational fuzzing over the difftest harness.
//!
//! The random difftest samples the ABTB/Bloom/BTB state machine
//! blindly; this scheduler closes the loop. Each **round** builds a
//! batch of candidate cases on the main thread (round 0 replays the
//! plain `seed_start + i` seeds, so a guided run and a random run start
//! from identical cases; later rounds mutate coverage-novel corpus
//! parents with `dynlink_workloads::mutate`, plus a trickle of fresh
//! random cases to keep exploring). Candidates are evaluated sharded
//! over the [`ParallelRunner`], then a **barrier merge** folds their
//! [`CoverageMap`]s into the global map *in submission order* — so
//! which candidate gets credit for a contested key, and therefore the
//! corpus, the coverage count and the whole report, are byte-identical
//! at every `--jobs` level.
//!
//! Cases that set at least one new coverage key (and pass) join the
//! corpus; cases that fail are reported with their *full reproducer
//! text* (a mutant is not reconstructible from a seed) and the first
//! failure is shrunk exactly like the random mode's. A round that
//! found failures is the campaign's last — completing it keeps the
//! report deterministic, stopping after it keeps the campaign short.
//!
//! `--save-corpus DIR` persists each corpus entry, minimized against
//! the predicate "still covers every key it contributed", in the same
//! plain-text reproducer format the shrinker prints (parseable by
//! `dynlink_workloads::repro`), ready to check into `corpus/`.

use std::path::PathBuf;

use dynlink_rng::Rng;
use dynlink_workloads::coverage::{describe_bit, CoverageMap};
use dynlink_workloads::fuzz::{shrink_case, FuzzCase};
use dynlink_workloads::mutate::mutate_case;
use dynlink_workloads::repro::{parse_corpus_file, CorpusCase};

use crate::difftest::{
    check_case, check_case_coverage, fold64, fold_str, CaseReport, DiffReport, Injection,
    FNV_OFFSET,
};
use crate::runner::{Cell, CellOutcome, ParallelRunner};

/// Fraction (1/N) of post-seed candidates that are fresh random cases
/// rather than corpus mutants, so the campaign never stops exploring.
const FRESH_RATIO: u64 = 8;

/// Configuration of one guided campaign.
#[derive(Debug, Clone)]
pub struct GuidedConfig {
    /// Seeds round 0's cases (`seed_start + i`) and the mutation RNG.
    pub seed_start: u64,
    /// Number of rounds (the campaign may stop earlier on a failure).
    pub rounds: u64,
    /// Candidate cases evaluated per round.
    pub round_size: u64,
    /// Worker threads for candidate evaluation.
    pub jobs: usize,
    /// Fault injection for the system side of every run.
    pub injection: Injection,
    /// Shrink the first failing case to a minimal reproducer.
    pub shrink: bool,
    /// Directory of reproducer files to seed the corpus from (read
    /// before round 0, evaluated and counted against the case budget).
    pub corpus_dir: Option<PathBuf>,
    /// Directory to persist minimized novel cases into.
    pub save_dir: Option<PathBuf>,
}

impl GuidedConfig {
    /// A small-default configuration: 4 rounds of 25 cases.
    pub fn new(seed_start: u64) -> GuidedConfig {
        GuidedConfig {
            seed_start,
            rounds: 4,
            round_size: 25,
            jobs: 1,
            injection: Injection::None,
            shrink: true,
            corpus_dir: None,
            save_dir: None,
        }
    }
}

/// One retained corpus entry: the case and the coverage keys it was
/// first to set (its minimization predicate).
struct CorpusEntry {
    case: FuzzCase,
    novel_bits: Vec<usize>,
}

/// Loads the seed corpus: single-process reproducers become round-zero
/// candidates; multi-process entries are reported and skipped (guided
/// scheduling is single-process — multi coverage comes from the random
/// `--multi` mode). Files are visited in name order so the report stays
/// deterministic. Unreadable or unparseable files become failures: a
/// rotten checked-in reproducer must fail CI, not vanish.
fn load_seed_corpus(dir: &PathBuf, output: &mut String, failures: &mut usize) -> Vec<FuzzCase> {
    let mut names: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "txt"))
            .collect(),
        Err(e) => {
            output.push_str(&format!("FAIL corpus dir {}: {e}\n", dir.display()));
            *failures += 1;
            return Vec::new();
        }
    };
    names.sort();
    let mut seeds = Vec::new();
    for path in names {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                output.push_str(&format!("FAIL corpus {}: {e}\n", path.display()));
                *failures += 1;
                continue;
            }
        };
        match parse_corpus_file(&text) {
            Ok(CorpusCase::Single(case)) => seeds.push(case),
            Ok(CorpusCase::Multi(_)) => {
                output.push_str(&format!(
                    "corpus {}: multi-process reproducer, replayed by `--multi`/tests only\n",
                    path.display()
                ));
            }
            Err(e) => {
                output.push_str(&format!("FAIL corpus {}: {e}\n", path.display()));
                *failures += 1;
            }
        }
    }
    seeds
}

/// Runs a coverage-guided campaign. The returned
/// [`DiffReport::output`] is byte-identical at every
/// [`GuidedConfig::jobs`] level for a fixed config.
pub fn run_guided(cfg: &GuidedConfig) -> DiffReport {
    let mut output = format!(
        "guided difftest: {} round(s) x {} candidate(s), seeds from {}, {{Off,Abtb,AbtbNoBloom}} x {{X86,Arm}}{}\n",
        cfg.rounds,
        cfg.round_size,
        cfg.seed_start,
        match cfg.injection {
            Injection::None => "",
            Injection::DropInvalidate => ", injecting stale-ABTB bug",
        }
    );

    let mut rng = Rng::seed_from_u64(cfg.seed_start ^ 0x9d1d_ed5e_ed00_0001);
    let mut coverage = CoverageMap::new();
    let mut corpus: Vec<CorpusEntry> = Vec::new();
    let mut digest = FNV_OFFSET;
    let mut failures = 0usize;
    let mut cases_total = 0u64;
    let mut first_failure: Option<FuzzCase> = None;

    let seed_cases = match &cfg.corpus_dir {
        Some(dir) => load_seed_corpus(dir, &mut output, &mut failures),
        None => Vec::new(),
    };

    // Round -1 (label "seed") replays the checked-in corpus; rounds
    // 0..rounds generate and mutate.
    let rounds: Vec<(String, Vec<FuzzCase>)> = {
        let mut r = Vec::new();
        if !seed_cases.is_empty() {
            r.push(("seed".to_owned(), seed_cases));
        }
        r
    };
    let mut planned = rounds;

    for round in 0..cfg.rounds {
        planned.push((format!("{round}"), Vec::new()));
    }

    for (label, mut candidates) in planned {
        // Candidate construction is main-thread sequential: identical
        // at every jobs level.
        if candidates.is_empty() {
            candidates = (0..cfg.round_size)
                .map(|i| {
                    if label == "0" || corpus.is_empty() {
                        // Round 0 replays the same seeds the random
                        // mode would check, for budget-for-budget
                        // comparability.
                        if label == "0" {
                            FuzzCase::generate(cfg.seed_start + i)
                        } else {
                            FuzzCase::generate(rng.next_u64())
                        }
                    } else if rng.gen_ratio(1, FRESH_RATIO) {
                        FuzzCase::generate(rng.next_u64())
                    } else {
                        let pool: Vec<FuzzCase> = corpus.iter().map(|e| e.case.clone()).collect();
                        // Frontier bias: half the picks mutate one of
                        // the newest corpus entries — the cases that
                        // most recently opened new coverage are the
                        // ones whose neighborhood is least explored.
                        let frontier = pool.len().saturating_sub(4);
                        let parent = if rng.gen_ratio(1, 2) {
                            &pool[frontier + rng.gen_index(0..pool.len() - frontier)]
                        } else {
                            &pool[rng.gen_index(0..pool.len())]
                        };
                        mutate_case(parent, &pool, &mut rng)
                    }
                })
                .collect();
        }

        let injection = cfg.injection;
        let cells: Vec<Cell<(CaseReport, CoverageMap)>> = candidates
            .iter()
            .enumerate()
            .map(|(i, case)| {
                let case = case.clone();
                Cell::new(format!("r{label}c{i}"), move |_ctx| {
                    check_case_coverage(&case, injection)
                })
            })
            .collect();
        let report = ParallelRunner::new(cfg.jobs).run(cfg.seed_start ^ 0x9d1d_0001, cells);

        // Barrier merge in submission order: coverage credit, corpus
        // membership and the digest are independent of scheduling.
        let cov_before = coverage.count();
        let corpus_before = corpus.len();
        let mut round_failures = 0usize;
        for (i, cell) in report.cells.into_iter().enumerate() {
            cases_total += 1;
            match cell.outcome {
                CellOutcome::Done((r, map)) => {
                    digest = fold64(digest, r.digest_fold);
                    let novel = coverage.merge(&map);
                    if !r.failures.is_empty() {
                        if first_failure.is_none() {
                            first_failure = Some(candidates[i].clone());
                        }
                        output.push_str(&format!("FAIL case: {}\n", candidates[i]));
                        for f in &r.failures {
                            output.push_str(&format!("  {f}\n"));
                            round_failures += 1;
                        }
                    } else if !novel.is_empty() {
                        corpus.push(CorpusEntry {
                            case: candidates[i].clone(),
                            novel_bits: novel,
                        });
                    }
                }
                CellOutcome::Panicked(msg) => {
                    output.push_str(&format!("FAIL {}: panicked: {msg}\n", cell.label));
                    round_failures += 1;
                }
            }
        }
        failures += round_failures;
        output.push_str(&format!(
            "round {label}: coverage {} (+{}), corpus {} (+{}), failures {round_failures}\n",
            coverage.count(),
            coverage.count() - cov_before,
            corpus.len(),
            corpus.len() - corpus_before,
        ));
        if round_failures > 0 {
            // The failure round completes (deterministic accounting),
            // then the campaign stops: further mutation of a broken
            // mechanism only re-finds the same bug.
            break;
        }
    }

    if let Some(case) = first_failure.take().filter(|_| cfg.shrink) {
        let shrunk = shrink_case(&case, |c| !check_case(c, cfg.injection).failures.is_empty());
        output.push_str("shrunk minimal reproducer:\n");
        output.push_str(&format!("  {shrunk}\n"));
        for f in check_case(&shrunk, cfg.injection).failures {
            output.push_str(&format!("  {f}\n"));
        }
    }

    // The corpus is part of the report (and of the digest): the
    // determinism guarantee covers exactly which cases were kept.
    if !corpus.is_empty() {
        output.push_str(&format!("corpus ({} case(s)):\n", corpus.len()));
        for entry in &corpus {
            let text = entry.case.to_string();
            digest = fold_str(digest, &text);
            output.push_str(&format!("  {text}\n"));
        }
    }

    if let Some(dir) = &cfg.save_dir {
        save_corpus(dir, &corpus, cfg.injection, &mut output, &mut failures);
    }

    output.push_str(&format!(
        "guided difftest: {failures} failure(s) across {cases_total} case(s); coverage {} key(s); corpus {} case(s); state digest {digest:#018x}\n",
        coverage.count(),
        corpus.len(),
    ));
    DiffReport {
        output,
        failures,
        cases: cases_total,
        digest,
        coverage: coverage.count(),
    }
}

/// Minimizes each corpus entry against "still passes and still covers
/// every key it contributed", then writes it as a commented reproducer
/// file named after its index and coverage contribution.
fn save_corpus(
    dir: &PathBuf,
    corpus: &[CorpusEntry],
    injection: Injection,
    output: &mut String,
    failures: &mut usize,
) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        output.push_str(&format!("FAIL save-corpus {}: {e}\n", dir.display()));
        *failures += 1;
        return;
    }
    for (i, entry) in corpus.iter().enumerate() {
        let minimized = shrink_case(&entry.case, |c| {
            let (r, m) = check_case_coverage(c, injection);
            r.failures.is_empty() && entry.novel_bits.iter().all(|&b| m.contains(b))
        });
        let mut text = String::from("# guided-fuzzer corpus entry; novel coverage keys:\n");
        for &b in &entry.novel_bits {
            text.push_str(&format!("#   {}\n", describe_bit(b)));
        }
        text.push_str(&format!("{minimized}\n"));
        let path = dir.join(format!("guided_{i:04}.txt"));
        match std::fs::write(&path, &text) {
            Ok(()) => output.push_str(&format!("saved {}\n", path.display())),
            Err(e) => {
                output.push_str(&format!("FAIL save {}: {e}\n", path.display()));
                *failures += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> GuidedConfig {
        GuidedConfig {
            seed_start: 0,
            rounds: 2,
            round_size: 4,
            jobs: 2,
            injection: Injection::None,
            shrink: false,
            corpus_dir: None,
            save_dir: None,
        }
    }

    #[test]
    fn clean_campaign_grows_coverage_and_corpus() {
        let r = run_guided(&small_cfg());
        assert_eq!(r.failures, 0, "{}", r.output);
        assert_eq!(r.cases, 8);
        assert!(r.coverage > 0, "{}", r.output);
        assert!(r.output.contains("round 0: coverage"), "{}", r.output);
        assert!(r.output.contains("corpus ("), "{}", r.output);
    }

    #[test]
    fn injected_bug_stops_the_campaign_and_is_shrunk() {
        let mut cfg = small_cfg();
        cfg.rounds = 8;
        cfg.injection = Injection::DropInvalidate;
        cfg.shrink = true;
        let r = run_guided(&cfg);
        assert!(r.failures > 0, "{}", r.output);
        assert!(
            r.output.contains("shrunk minimal reproducer"),
            "{}",
            r.output
        );
        assert!(
            r.cases < 8 * cfg.round_size,
            "campaign must stop at the failing round: {}",
            r.output
        );
    }
}
