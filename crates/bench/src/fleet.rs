//! Fleet-scale tenant engine: thousands of processes under live
//! traffic, with tail-latency CDFs as a function of ABTB policy.
//!
//! The paper's server story (§5, Apache/Memcached/MySQL) is about
//! *tails*: trampoline storms hurt p99 more than the mean, and the
//! §3.3 context-switch policy decides whether a process returns to a
//! warm ABTB or a cold one. This module scales that question to a
//! multi-tenant fleet — 1k–4k processes forked from class templates
//! (see `dynlink_core::TenantClass`), all VA-aliased, time-sharing one
//! simulated core under deterministic request traffic — and measures
//! per-request latency percentiles for every cell of the policy matrix
//! `{Off, Abtb, AbtbNoBloom} × {FlushOnSwitch, AsidTagged}`.
//!
//! **The workload** promotes `examples/library_upgrade.rs` to a
//! first-class fleet event: every tenant runs a request loop calling
//! `f` (provided by `libv1`, shadowed by `libv2`) and `g` (provided by
//! `libg`, shadowed by `libgsh`). Halfway through the run each tenant
//! crosses the *upgrade barrier*: its next request is preceded by a
//! `dlclose` of `libv1`, so the re-armed GOT slot lazily re-resolves
//! into `libv2` — a live library upgrade under load. A seeded cadence
//! of `dlclose`/`dlreopen` churn on `libg` runs throughout. At the
//! three-quarter mark a *hot-patch wave* sweeps the fleet: each
//! upgraded tenant's `libv2` `f` is rewritten in place (§4.3's
//! software-emulation move — `mprotect(+W)`, patch, `mprotect(-W)`),
//! COW-copying the shared page and bumping the space's code version,
//! which the superblock dispatch revalidation must notice. The
//! per-request `R0` delta encodes which `f` body served the request
//! (see [`F_V1`]/[`F_V2`]/[`F_PATCH`]), so version correctness is
//! *measured*, not assumed: [`CellSummary::version_anomalies`] must be
//! zero unless a negative-control knob (`demand_invalidate`,
//! `superblock_validate`) is deliberately off.
//!
//! **The clock** is simulated cycles, never wall time. Requests arrive
//! on a seeded open-loop schedule (or closed-loop with think times),
//! are served FIFO by the single core, and a request's latency is
//! `completion − arrival` where service time is the machine's cycle
//! delta for that request segment. Everything derives from
//! `dynlink_rng` seeded by `(seed, policy cell, tenant)`, so a run —
//! and the `BENCH_fleet.json` record it appends — is byte-identical
//! at any `--jobs` level and across repeated runs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dynlink_core::{MachineConfig, MultiProcessSystem, TenantClass};
use dynlink_cpu::LinkAccel;
use dynlink_isa::{Inst, Reg};
use dynlink_linker::{LinkOptions, ModuleBuilder, ModuleSpec};
use dynlink_mem::Perms;
use dynlink_rng::Rng;

use crate::runner::{Cell, CellOutcome, ParallelRunner};
use crate::simspeed::json;

/// The schema tag written into every run record.
pub const SCHEMA: &str = "dynlink-fleet/1";

/// Library calls a request makes to *each* of `f` and `g`: one
/// resolution then repeated trampoline executions, the §2 shape that
/// gives the ABTB something to skip within a single request.
pub const CALLS_PER_REQUEST: u64 = 8;

/// Per-call `R0` delta of `libv1`'s `f` (the pre-upgrade version).
/// Chosen with [`F_V2`] so the per-request delta modulo ten identifies
/// the serving version regardless of the `g` contribution (a multiple
/// of ten): `8×3 % 10 = 4` against `8×5 % 10 = 0`.
pub const F_V1: u64 = 3;
/// Per-call `R0` delta of `libv2`'s `f` (the post-upgrade version).
pub const F_V2: u64 = 5;
/// Per-call `R0` delta of `libv2`'s `f` after the hot-patch wave
/// rewrites it in place: `8×9 % 10 = 2`, distinct from both the
/// [`F_V1`] residue (4) and the [`F_V2`] residue (0), so a stale
/// superblock replaying the pre-patch body is *observable*.
pub const F_PATCH: u64 = 9;
/// Per-call `R0` delta of `libg`'s `g` (churned primary).
pub const G_PRIMARY: u64 = 70;
/// Per-call `R0` delta of `libgsh`'s `g` (churn fallback).
pub const G_SHADOW: u64 = 700;

/// The upgraded-away library every tenant `dlclose`s at the barrier.
pub const LIB_V1: &str = "libv1";
/// The replacement provider requests resolve into after the barrier.
pub const LIB_V2: &str = "libv2";
/// The churned auxiliary library.
pub const LIB_G: &str = "libg";

/// Instruction budget for a single request segment; exhausting it is a
/// harness bug, not a workload property.
const REQUEST_BUDGET: u64 = 1_000_000;

/// CDF sample points, in per-mille (1000 = max).
pub const CDF_PER_MILLE: [u32; 9] = [100, 250, 500, 750, 900, 950, 990, 999, 1000];

/// Fleet shape and traffic parameters.
#[derive(Debug, Clone)]
pub struct FleetParams {
    /// Tenant processes forked from the class template.
    pub tenants: usize,
    /// Requests each tenant serves over the run.
    pub requests: u64,
    /// Root seed for arrival schedules and churn.
    pub seed: u64,
    /// Closed-loop traffic (next arrival = completion + think time)
    /// instead of the default open loop (pre-scheduled arrivals that
    /// ignore server state — queueing delay shows up in the tail).
    pub closed_loop: bool,
    /// Mean cycles between *aggregate* arrivals (open loop) or the
    /// mean per-tenant think time (closed loop).
    pub arrival_mean: u64,
    /// Serve-count period of the `libg` `dlclose`/`dlreopen` churn
    /// (0 disables churn).
    pub churn_period: u64,
    /// Per-tenant stack bytes (small: a fleet of default 1 MiB stacks
    /// would dwarf the text it runs).
    pub stack_bytes: u64,
    /// Negative-control knob: module GC's mandated front-end
    /// invalidation (`MachineConfig::demand_invalidate`). Leave `true`
    /// outside staleness tests.
    pub demand_invalidate: bool,
    /// Negative-control knob: superblock dispatch revalidation
    /// (`MachineConfig::superblock_validate`). Leave `true` outside
    /// staleness tests.
    pub superblock_validate: bool,
}

impl Default for FleetParams {
    fn default() -> Self {
        FleetParams {
            tenants: 1024,
            requests: 8,
            seed: 0xF1EE7,
            closed_loop: false,
            arrival_mean: 1000,
            churn_period: 64,
            stack_bytes: 64 * 1024,
            demand_invalidate: true,
            superblock_validate: true,
        }
    }
}

/// The six policy cells, in report order.
pub const POLICY_MATRIX: [(LinkAccel, bool); 6] = [
    (LinkAccel::Off, false),
    (LinkAccel::Off, true),
    (LinkAccel::Abtb, false),
    (LinkAccel::Abtb, true),
    (LinkAccel::AbtbNoBloom, false),
    (LinkAccel::AbtbNoBloom, true),
];

/// Stable name of an accelerator mode.
pub fn accel_name(accel: LinkAccel) -> &'static str {
    match accel {
        LinkAccel::Off => "off",
        LinkAccel::Abtb => "abtb",
        LinkAccel::AbtbNoBloom => "abtb-nobloom",
    }
}

/// Stable name of a switch policy (`tagged` = ASID-tagged retention).
pub fn policy_name(tagged: bool) -> &'static str {
    if tagged {
        "asid-tagged"
    } else {
        "flush-on-switch"
    }
}

/// One policy cell's measured result. Every field is derived from
/// simulated state — no wall clock — so records are reproducible.
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// Accelerator mode name (see [`accel_name`]).
    pub accel: &'static str,
    /// Switch policy name (see [`policy_name`]).
    pub policy: &'static str,
    /// Requests served (tenants × requests-per-tenant).
    pub requests: u64,
    /// Tenants that crossed the upgrade barrier (`dlclose(libv1)`).
    pub upgrades: u64,
    /// Tenants whose `libv2` `f` was hot-patched in place at the
    /// three-quarter mark (only upgraded tenants patch).
    pub patches: u64,
    /// `libg` churn closes performed.
    pub churn_closes: u64,
    /// `libg` churn reopens performed.
    pub churn_reopens: u64,
    /// Requests served by `libv1`'s `f` (pre-barrier).
    pub v1_requests: u64,
    /// Requests served by `libv2`'s `f` (post-barrier, pre-patch).
    pub v2_requests: u64,
    /// Requests served by the hot-patched `f` body.
    pub patched_requests: u64,
    /// Requests whose observed `f` version contradicts the tenant's
    /// upgrade state. Always zero unless a negative-control knob is
    /// off.
    pub version_anomalies: u64,
    /// Latency percentiles in simulated cycles.
    pub p50: u64,
    /// 95th percentile latency.
    pub p95: u64,
    /// 99th percentile latency.
    pub p99: u64,
    /// 99.9th percentile latency.
    pub p999: u64,
    /// Worst-case latency.
    pub max: u64,
    /// Mean latency in millicycles (integer, for byte-stable JSON).
    pub mean_millicycles: u64,
    /// The full CDF at [`CDF_PER_MILLE`] sample points.
    pub cdf: Vec<(u32, u64)>,
    /// Total simulated cycles the cell's machine ran.
    pub total_cycles: u64,
    /// Resolver invocations (lazy binds + post-upgrade re-binds).
    pub resolver_invocations: u64,
    /// Trampoline executions skipped by the ABTB.
    pub trampolines_skipped: u64,
    /// Context switches the fleet performed.
    pub switches: u64,
}

/// A complete fleet run: the policy matrix under one traffic seed.
#[derive(Debug, Clone)]
pub struct FleetRecord {
    /// Free-form label (`pr<N>-...` convention for checked-in runs).
    pub label: String,
    /// Root seed.
    pub seed: u64,
    /// Tenant count.
    pub tenants: u64,
    /// Requests per tenant.
    pub requests_per_tenant: u64,
    /// Whether traffic was closed-loop.
    pub closed_loop: bool,
    /// Mean inter-arrival / think time in cycles.
    pub arrival_mean: u64,
    /// One summary per [`POLICY_MATRIX`] cell, in matrix order.
    pub cells: Vec<CellSummary>,
}

/// The tenant program: a request loop retiring one `Mark` per request,
/// calling `f` (libv1 → libv2 across the upgrade) and `g` (churned).
///
/// Interposition order matters: `libv1` outranks `libv2` and `libg`
/// outranks `libgsh`, so the shadows only serve after a `dlclose`.
///
/// # Errors
///
/// Propagates assembly errors (none for this fixed shape).
pub fn tenant_modules(requests: u64) -> Result<Vec<ModuleSpec>, dynlink_linker::LinkError> {
    let mut app = ModuleBuilder::new("app");
    let f = app.import("f");
    let g = app.import("g");
    app.begin_function("main", true);
    let top = app.asm().fresh_label("top");
    app.asm().push(Inst::mov_imm(Reg::R2, requests));
    app.asm().bind(top);
    for _ in 0..CALLS_PER_REQUEST {
        app.asm().push_call_extern(f);
        app.asm().push_call_extern(g);
    }
    app.asm().push(Inst::sub_imm(Reg::R2, 1));
    app.asm().push(Inst::Mark { id: 0 });
    app.asm().push_branch_nz(Reg::R2, top);
    app.asm().push(Inst::Halt);

    let adder = |module: &str, name: &str, delta: u64| {
        let mut lib = ModuleBuilder::new(module);
        lib.begin_function(name, true);
        lib.asm().push(Inst::add_imm(Reg::R0, delta));
        lib.asm().push(Inst::Ret);
        lib.finish()
    };
    Ok(vec![
        app.finish()?,
        adder(LIB_V1, "f", F_V1)?,
        adder(LIB_V2, "f", F_V2)?,
        adder(LIB_G, "g", G_PRIMARY)?,
        adder("libgsh", "g", G_SHADOW)?,
    ])
}

/// `sorted` latencies at `per_mille` (1-based nearest-rank; 1000 = max).
fn percentile(sorted: &[u64], per_mille: u32) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * per_mille as u64).div_ceil(1000);
    sorted[(rank.max(1) as usize - 1).min(sorted.len() - 1)]
}

/// Runs one policy cell of the fleet to completion and summarizes it.
///
/// Every cell of a run derives its traffic from `(params.seed,
/// tenant)` alone — *not* the policy — so all six cells see the
/// byte-identical arrival schedule and the latency CDFs differ only
/// by what the hardware policy does with it.
///
/// # Errors
///
/// Returns a message on load failures or CPU faults — the latter are
/// *expected* when a negative-control knob is off and a stale
/// structure skips into GC-unmapped code.
pub fn run_cell(
    params: &FleetParams,
    accel: LinkAccel,
    tagged: bool,
) -> Result<CellSummary, String> {
    let specs = tenant_modules(params.requests).map_err(|e| format!("tenant modules: {e}"))?;
    let class = TenantClass {
        modules: specs,
        // ARM-style three-instruction trampolines (Figure 2): the
        // flavor where skipping buys the most, hence the paper's
        // motivating case for the ABTB.
        options: LinkOptions {
            flavor: dynlink_linker::TrampolineFlavor::Arm,
            ..LinkOptions::default()
        },
        tenants: params.tenants,
    };
    let cfg = MachineConfig {
        accel,
        flush_abtb_on_context_switch: !tagged,
        demand_invalidate: params.demand_invalidate,
        superblock_validate: params.superblock_validate,
        ..MachineConfig::default()
    };
    let mut mps = MultiProcessSystem::new_fleet(&[class], cfg, 1, params.stack_bytes)
        .map_err(|e| format!("fleet boot: {e}"))?;

    let n = params.tenants;
    let total = n as u64 * params.requests;
    let barrier = total / 2;
    let patch_barrier = total * 3 / 4;
    // All tenants fork from one template, so `f`'s address is the same
    // in every space; each patch still COWs only the patching tenant's
    // copy of the page.
    let f_addr = mps
        .image(0)
        .module(LIB_V2)
        .and_then(|m| m.export("f"))
        .ok_or_else(|| format!("{LIB_V2} does not export f"))?;
    let horizon = (total * params.arrival_mean).max(1);
    let mut tenant_rng: Vec<Rng> = (0..n)
        .map(|t| Rng::seed_from_u64(params.seed).derive(t as u64))
        .collect();

    // Open-loop schedules are drawn up front (arrivals ignore server
    // state); closed-loop arrivals are generated at completion time.
    let mut open_arrivals: Vec<Vec<u64>> = Vec::new();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(n);
    for (t, rng) in tenant_rng.iter_mut().enumerate() {
        if params.closed_loop {
            let spread = (n as u64 * params.arrival_mean).max(1);
            heap.push(Reverse((rng.next_u64() % spread, t)));
        } else {
            let mut sched: Vec<u64> = (0..params.requests)
                .map(|_| rng.next_u64() % horizon)
                .collect();
            sched.sort_unstable();
            heap.push(Reverse((sched[0], t)));
            sched.reverse(); // pop() yields ascending
            sched.pop();
            open_arrivals.push(sched);
        }
    }

    let mut summary = CellSummary {
        accel: accel_name(accel),
        policy: policy_name(tagged),
        requests: 0,
        upgrades: 0,
        patches: 0,
        churn_closes: 0,
        churn_reopens: 0,
        v1_requests: 0,
        v2_requests: 0,
        patched_requests: 0,
        version_anomalies: 0,
        p50: 0,
        p95: 0,
        p99: 0,
        p999: 0,
        max: 0,
        mean_millicycles: 0,
        cdf: Vec::new(),
        total_cycles: 0,
        resolver_invocations: 0,
        trampolines_skipped: 0,
        switches: 0,
    };
    let mut latencies: Vec<u64> = Vec::with_capacity(total as usize);
    let mut upgraded = vec![false; n];
    let mut patched = vec![false; n];
    let mut g_open = vec![true; n];
    let mut reqs_done = vec![0u64; n];
    let mut prev_r0 = vec![0u64; n];
    let mut busy_until = 0u64;
    let mut served = 0u64;

    while let Some(Reverse((arrival, t))) = heap.pop() {
        mps.switch_to(t);
        if served >= barrier && !upgraded[t] {
            mps.dlclose_active(LIB_V1)
                .map_err(|e| format!("upgrade dlclose (tenant {t}): {e}"))?;
            upgraded[t] = true;
            summary.upgrades += 1;
        }
        if served >= patch_barrier && upgraded[t] && !patched[t] {
            // The §4.3 software hot-patch: lift the text protection,
            // rewrite `f`'s add in place, drop the protection again.
            // `patch_code` COWs the shared page and bumps the space's
            // code version; dispatch revalidation (when enabled) is
            // what keeps a previously translated `f` from replaying
            // the old body.
            let space = mps.machine_mut().space_mut();
            space
                .protect(f_addr, 1, Perms::RWX)
                .map_err(|e| format!("hot-patch mprotect +W (tenant {t}): {e}"))?;
            space
                .patch_code(f_addr, Inst::add_imm(Reg::R0, F_PATCH))
                .map_err(|e| format!("hot-patch (tenant {t}): {e}"))?;
            space
                .protect(f_addr, 1, Perms::RX)
                .map_err(|e| format!("hot-patch mprotect -W (tenant {t}): {e}"))?;
            patched[t] = true;
            summary.patches += 1;
        }
        if params.churn_period > 0 && served % params.churn_period == params.churn_period - 1 {
            if g_open[t] {
                mps.dlclose_active(LIB_G)
                    .map_err(|e| format!("churn dlclose (tenant {t}): {e}"))?;
                g_open[t] = false;
                summary.churn_closes += 1;
            } else {
                mps.reopen_active(LIB_G)
                    .map_err(|e| format!("churn reopen (tenant {t}): {e}"))?;
                g_open[t] = true;
                summary.churn_reopens += 1;
            }
        }
        let c0 = mps.counters().cycles;
        let m0 = mps.marks_of(t);
        mps.run_active_until_marks(m0 + 1, REQUEST_BUDGET)
            .map_err(|e| format!("request (tenant {t}): {e}"))?;
        if mps.marks_of(t) != m0 + 1 {
            return Err(format!("tenant {t} request exhausted its budget"));
        }
        let service = mps.counters().cycles - c0;
        let r0 = mps.reg_of(t, Reg::R0);
        let delta = r0.wrapping_sub(prev_r0[t]);
        prev_r0[t] = r0;
        let v1_residue = (CALLS_PER_REQUEST * F_V1) % 10;
        let v2_residue = (CALLS_PER_REQUEST * F_V2) % 10;
        let patch_residue = (CALLS_PER_REQUEST * F_PATCH) % 10;
        let expected = if patched[t] {
            patch_residue
        } else if upgraded[t] {
            v2_residue
        } else {
            v1_residue
        };
        if delta % 10 == patch_residue {
            summary.patched_requests += 1;
        } else if delta % 10 == v2_residue {
            summary.v2_requests += 1;
        } else if delta % 10 == v1_residue {
            summary.v1_requests += 1;
        }
        if delta % 10 != expected {
            summary.version_anomalies += 1;
        }

        let start = arrival.max(busy_until);
        let completion = start + service;
        latencies.push(completion - arrival);
        busy_until = completion;
        served += 1;
        reqs_done[t] += 1;
        if reqs_done[t] < params.requests {
            let next = if params.closed_loop {
                let think =
                    params.arrival_mean / 2 + tenant_rng[t].next_u64() % params.arrival_mean.max(1);
                completion + think
            } else {
                open_arrivals[t].pop().expect("open-loop schedule underrun")
            };
            heap.push(Reverse((next, t)));
        }
    }

    latencies.sort_unstable();
    summary.requests = served;
    summary.p50 = percentile(&latencies, 500);
    summary.p95 = percentile(&latencies, 950);
    summary.p99 = percentile(&latencies, 990);
    summary.p999 = percentile(&latencies, 999);
    summary.max = *latencies.last().unwrap_or(&0);
    let sum: u128 = latencies.iter().map(|&l| l as u128).sum();
    summary.mean_millicycles = (sum * 1000 / latencies.len().max(1) as u128) as u64;
    summary.cdf = CDF_PER_MILLE
        .iter()
        .map(|&pm| (pm, percentile(&latencies, pm)))
        .collect();
    let c = mps.counters();
    summary.total_cycles = c.cycles;
    summary.resolver_invocations = c.resolver_invocations;
    summary.trampolines_skipped = c.trampolines_skipped;
    summary.switches = mps.switches();
    Ok(summary)
}

/// Runs the full six-cell policy matrix, sharded over `jobs` workers.
/// Byte-identical at any `jobs` level: each cell derives its RNG from
/// `(params.seed, cell index)` and results are merged in matrix order.
///
/// # Errors
///
/// Propagates the first failing cell's message.
pub fn run_fleet(params: &FleetParams, label: &str, jobs: usize) -> Result<FleetRecord, String> {
    let cells: Vec<Cell<Result<CellSummary, String>>> = POLICY_MATRIX
        .iter()
        .map(|&(accel, tagged)| {
            let params = params.clone();
            Cell::new(
                format!("{}/{}", accel_name(accel), policy_name(tagged)),
                move |_ctx| run_cell(&params, accel, tagged),
            )
        })
        .collect();
    let report = ParallelRunner::new(jobs).run(params.seed, cells);
    let mut out = Vec::with_capacity(POLICY_MATRIX.len());
    for cell in report.into_values() {
        match cell {
            CellOutcome::Done(Ok(s)) => out.push(s),
            CellOutcome::Done(Err(e)) => return Err(e),
            CellOutcome::Panicked(m) => return Err(format!("cell panicked: {m}")),
        }
    }
    Ok(FleetRecord {
        label: label.to_owned(),
        seed: params.seed,
        tenants: params.tenants as u64,
        requests_per_tenant: params.requests,
        closed_loop: params.closed_loop,
        arrival_mean: params.arrival_mean,
        cells: out,
    })
}

/// Renders the fixed-layout latency table (all columns simulated, so
/// the rendering is as reproducible as the record).
pub fn render_table(record: &FleetRecord) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fleet `{}`: {} tenants x {} requests, seed {:#x}, {} traffic (mean {} cycles)\n",
        record.label,
        record.tenants,
        record.requests_per_tenant,
        record.seed,
        if record.closed_loop {
            "closed-loop"
        } else {
            "open-loop"
        },
        record.arrival_mean,
    ));
    out.push_str(&format!(
        "  {:<14} {:<16} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>10}\n",
        "accel", "policy", "p50", "p95", "p99", "p999", "max", "upgrades", "anomalies"
    ));
    for c in &record.cells {
        out.push_str(&format!(
            "  {:<14} {:<16} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>10}\n",
            c.accel, c.policy, c.p50, c.p95, c.p99, c.p999, c.max, c.upgrades, c.version_anomalies
        ));
    }
    out
}

fn num(v: u64) -> json::Value {
    json::Value::Number(v as f64)
}

/// Serializes a fleet record as a `dynlink-fleet/1` JSON object.
pub fn record_to_json(record: &FleetRecord) -> json::Value {
    let cells = record
        .cells
        .iter()
        .map(|c| {
            let cdf = c
                .cdf
                .iter()
                .map(|&(pm, cycles)| {
                    json::Value::Object(vec![
                        ("per_mille".into(), num(pm as u64)),
                        ("cycles".into(), num(cycles)),
                    ])
                })
                .collect();
            json::Value::Object(vec![
                ("accel".into(), json::Value::String(c.accel.into())),
                ("policy".into(), json::Value::String(c.policy.into())),
                ("requests".into(), num(c.requests)),
                ("upgrades".into(), num(c.upgrades)),
                ("patches".into(), num(c.patches)),
                ("churn_closes".into(), num(c.churn_closes)),
                ("churn_reopens".into(), num(c.churn_reopens)),
                ("v1_requests".into(), num(c.v1_requests)),
                ("v2_requests".into(), num(c.v2_requests)),
                ("patched_requests".into(), num(c.patched_requests)),
                ("version_anomalies".into(), num(c.version_anomalies)),
                ("p50".into(), num(c.p50)),
                ("p95".into(), num(c.p95)),
                ("p99".into(), num(c.p99)),
                ("p999".into(), num(c.p999)),
                ("max".into(), num(c.max)),
                ("mean_millicycles".into(), num(c.mean_millicycles)),
                ("cdf".into(), json::Value::Array(cdf)),
                ("total_cycles".into(), num(c.total_cycles)),
                ("resolver_invocations".into(), num(c.resolver_invocations)),
                ("trampolines_skipped".into(), num(c.trampolines_skipped)),
                ("switches".into(), num(c.switches)),
            ])
        })
        .collect();
    json::Value::Object(vec![
        ("schema".into(), json::Value::String(SCHEMA.into())),
        ("label".into(), json::Value::String(record.label.clone())),
        ("seed".into(), num(record.seed)),
        ("tenants".into(), num(record.tenants)),
        (
            "requests_per_tenant".into(),
            num(record.requests_per_tenant),
        ),
        (
            "traffic".into(),
            json::Value::String(if record.closed_loop { "closed" } else { "open" }.into()),
        ),
        ("arrival_mean".into(), num(record.arrival_mean)),
        ("cells".into(), json::Value::Array(cells)),
    ])
}

/// Appends `record` to the JSON array in `path` (creating the file as
/// a one-element array if absent) and returns the new run count. The
/// whole array is re-validated before writing, as in
/// `simspeed::append_record`.
///
/// # Errors
///
/// Returns a message if the existing file fails to parse or validate,
/// if appending would invalidate it, or on I/O failure.
pub fn append_record(path: &std::path::Path, record: &FleetRecord) -> Result<usize, String> {
    let mut runs = match std::fs::read_to_string(path) {
        Ok(text) => match validate(&text) {
            Ok(v) => v,
            Err(e) => return Err(format!("{}: existing file invalid: {e}", path.display())),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    runs.push(record_to_json(record));
    let text = json::Value::Array(runs.clone()).pretty();
    if let Err(e) = validate(&text) {
        return Err(format!(
            "{}: appending `{}` would invalidate the file: {e}",
            path.display(),
            record.label
        ));
    }
    std::fs::write(path, text + "\n").map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(runs.len())
}

/// Parses `text` and checks it against the `dynlink-fleet/1` schema: a
/// JSON array of run objects, each with the schema tag, a unique
/// label, positive fleet dimensions, and a non-empty `cells` array
/// whose entries carry names, monotone latency percentiles and the
/// workload counters. Returns the run values.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate(text: &str) -> Result<Vec<json::Value>, String> {
    let value = json::parse(text)?;
    let json::Value::Array(runs) = value else {
        return Err("top level is not a JSON array".into());
    };
    let mut labels: Vec<String> = Vec::with_capacity(runs.len());
    for (i, run) in runs.iter().enumerate() {
        let json::Value::Object(fields) = run else {
            return Err(format!("run {i}: not an object"));
        };
        let get = |key: &str| -> Option<&json::Value> {
            fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        };
        match get("schema") {
            Some(json::Value::String(s)) if s == SCHEMA => {}
            _ => return Err(format!("run {i}: missing or wrong `schema` tag")),
        }
        match get("label") {
            Some(json::Value::String(s)) if !s.is_empty() => {
                if labels.iter().any(|l| l == s) {
                    return Err(format!("run {i}: duplicate label `{s}`"));
                }
                labels.push(s.clone());
            }
            _ => return Err(format!("run {i}: missing `label`")),
        }
        for key in ["tenants", "requests_per_tenant"] {
            match get(key) {
                Some(json::Value::Number(n)) if *n > 0.0 => {}
                _ => return Err(format!("run {i}: missing positive `{key}`")),
            }
        }
        match get("traffic") {
            Some(json::Value::String(s)) if s == "open" || s == "closed" => {}
            _ => return Err(format!("run {i}: `traffic` must be open|closed")),
        }
        let Some(json::Value::Array(cells)) = get("cells") else {
            return Err(format!("run {i}: missing `cells` array"));
        };
        if cells.is_empty() {
            return Err(format!("run {i}: empty `cells`"));
        }
        for (j, cell) in cells.iter().enumerate() {
            let json::Value::Object(cf) = cell else {
                return Err(format!("run {i} cell {j}: not an object"));
            };
            let cget = |key: &str| -> Option<&json::Value> {
                cf.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            };
            for key in ["accel", "policy"] {
                match cget(key) {
                    Some(json::Value::String(s)) if !s.is_empty() => {}
                    _ => return Err(format!("run {i} cell {j}: missing `{key}`")),
                }
            }
            let mut nums = std::collections::HashMap::new();
            for key in [
                "requests",
                "upgrades",
                "patches",
                "v1_requests",
                "v2_requests",
                "patched_requests",
                "version_anomalies",
                "p50",
                "p95",
                "p99",
                "p999",
                "max",
                "mean_millicycles",
                "total_cycles",
                "resolver_invocations",
                "trampolines_skipped",
                "switches",
            ] {
                match cget(key) {
                    Some(json::Value::Number(n)) if *n >= 0.0 => {
                        nums.insert(key, *n);
                    }
                    _ => return Err(format!("run {i} cell {j}: missing numeric `{key}`")),
                }
            }
            let ordered = ["p50", "p95", "p99", "p999", "max"];
            for pair in ordered.windows(2) {
                if nums[pair[0]] > nums[pair[1]] {
                    return Err(format!(
                        "run {i} cell {j}: `{}` exceeds `{}`",
                        pair[0], pair[1]
                    ));
                }
            }
            let Some(json::Value::Array(cdf)) = cget("cdf") else {
                return Err(format!("run {i} cell {j}: missing `cdf` array"));
            };
            for (k, point) in cdf.iter().enumerate() {
                let json::Value::Object(pf) = point else {
                    return Err(format!("run {i} cell {j} cdf {k}: not an object"));
                };
                for key in ["per_mille", "cycles"] {
                    if !pf.iter().any(|(pk, v)| {
                        pk == key && matches!(v, json::Value::Number(n) if *n >= 0.0)
                    }) {
                        return Err(format!("run {i} cell {j} cdf {k}: missing `{key}`"));
                    }
                }
            }
        }
    }
    Ok(runs)
}

/// Extracts a numeric field from cell `cell` of a validated run value
/// (used by the CI grep and tests).
pub fn cell_field(run: &json::Value, cell: usize, key: &str) -> Option<f64> {
    let json::Value::Object(fields) = run else {
        return None;
    };
    let (_, json::Value::Array(cells)) = fields.iter().find(|(k, _)| k == "cells")? else {
        return None;
    };
    let json::Value::Object(cf) = cells.get(cell)? else {
        return None;
    };
    match cf.iter().find(|(k, _)| k == key)? {
        (_, json::Value::Number(n)) => Some(*n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> FleetParams {
        FleetParams {
            tenants: 12,
            requests: 4,
            churn_period: 16,
            ..FleetParams::default()
        }
    }

    #[test]
    fn tiny_fleet_serves_every_request_and_upgrades() {
        let s = run_cell(&tiny_params(), LinkAccel::Abtb, true).expect("cell runs");
        assert_eq!(s.requests, 48);
        // A tenant that served its full quota before the barrier never
        // upgrades; everyone else must.
        assert!(
            s.upgrades > 0 && s.upgrades <= 12,
            "upgrades {} out of range",
            s.upgrades
        );
        assert_eq!(s.version_anomalies, 0);
        assert!(s.v1_requests > 0 && s.v2_requests > 0);
        assert_eq!(
            s.v1_requests + s.v2_requests + s.patched_requests,
            s.requests
        );
        assert!(
            s.patches <= s.upgrades,
            "only upgraded tenants hot-patch ({} > {})",
            s.patches,
            s.upgrades
        );
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!(s.resolver_invocations > 0);
    }

    #[test]
    fn cells_are_reproducible() {
        let a = run_cell(&tiny_params(), LinkAccel::Abtb, false).expect("first");
        let b = run_cell(&tiny_params(), LinkAccel::Abtb, false).expect("second");
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn closed_loop_traffic_runs() {
        let params = FleetParams {
            closed_loop: true,
            ..tiny_params()
        };
        let s = run_cell(&params, LinkAccel::Off, false).expect("closed loop");
        assert_eq!(s.requests, 48);
        assert_eq!(s.version_anomalies, 0);
    }

    #[test]
    fn record_roundtrips_through_schema_validation() {
        let record = run_fleet(&tiny_params(), "test", 2).expect("matrix runs");
        assert_eq!(record.cells.len(), POLICY_MATRIX.len());
        let text = json::Value::Array(vec![record_to_json(&record)]).pretty();
        let runs = validate(&text).expect("self-produced record validates");
        assert_eq!(runs.len(), 1);
        assert!(cell_field(&runs[0], 0, "upgrades").unwrap() > 0.0);
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(validate("{}").is_err(), "object top level");
        assert!(validate("[1]").is_err(), "non-object run");
        assert!(
            validate("[{\"schema\": \"wrong/9\"}]").is_err(),
            "wrong schema tag"
        );
        // Non-monotone percentiles are rejected.
        let record = run_fleet(&tiny_params(), "mono", 1).expect("matrix runs");
        let mut bad = record.clone();
        bad.cells[0].p50 = bad.cells[0].max + 1;
        let text = json::Value::Array(vec![record_to_json(&bad)]).pretty();
        assert!(validate(&text).unwrap_err().contains("exceeds"));
    }
}
