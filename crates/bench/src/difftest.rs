//! Differential-testing harness: fuzz cases vs the golden oracle.
//!
//! Each fuzz case (see `dynlink_workloads::fuzz`) is run once through
//! the golden architectural [`Oracle`] and once through the full
//! [`System`] under *every* `LinkAccel` mode and both trampoline
//! flavors — six system runs per oracle digest. The harness fails a
//! case on:
//!
//! * **architectural divergence** — any [`ArchDigest`] mismatch
//!   (registers, pc, halted flag, GOT/data memory) between a system
//!   run and the oracle;
//! * **counter-invariant violations** — e.g. a baseline machine that
//!   skips trampolines, `trampolines_skipped > abtb_hits`, a resolver
//!   invocation count different from the oracle's, fewer ABTB flushes
//!   than injected flush events, or a retired-instruction count that
//!   does not equal the baseline count minus the skipped trampoline
//!   instructions.
//!
//! [`Injection::DropInvalidate`] models the §3.4 bug this subsystem
//! exists to catch: event GOT rewrites performed as raw memory writes,
//! bypassing the store path (so the Bloom filter never observes them)
//! and omitting the explicit ABTB invalidate. The harness must detect
//! it, and [`run_difftest`] shrinks the first failing case to a minimal
//! reproducer.
//!
//! Cases are independent, so [`run_difftest`] shards them over the
//! [`ParallelRunner`]; seeds are derived per cell (`seed_start + index`)
//! and results are aggregated in submission order, making the report
//! byte-identical at every `--jobs` level.
//!
//! The `--prelink` axis (stable linking) adds a second round per case:
//! a warm-up oracle run with *no* schedule events captures a
//! [`ResolutionSnapshot`], which is serialized, decoded back (so every
//! case round-trips the `DLSN` format), restored at boot into a fresh
//! *prelink oracle* that then runs the full schedule, and restored at
//! boot into a prelink system run per accel mode that must match it.
//! The extra runs are compared pairwise and never folded into the
//! report digest, so historical state digests are unchanged. The
//! `prelink_validate = false` machine knob is the negative control:
//! the oracle always validates restores, so a system replaying stale
//! (tombstoned) entries verbatim diverges — the
//! `corpus/stale_prelink_restore.txt` witness pins exactly this.

use dynlink_core::{
    LinkAccel, MachineConfig, MultiProcessSystem, System, SystemBuilder, TenantClass,
};
use dynlink_linker::{LinkOptions, ResolutionSnapshot, RestoreOutcome, TrampolineFlavor};
use dynlink_oracle::{ArchDigest, MultiOracle, Oracle};
use dynlink_uarch::PerfCounters;
use dynlink_workloads::coverage::{CoverageMap, EventKind, EventWindow, PolicyCtx};
use dynlink_workloads::fuzz::{
    shrink_case, shrink_multi_case, FuzzCase, FuzzEvent, MultiFuzzCase, MultiFuzzEvent,
};

use crate::runner::{Cell, CellOutcome, ParallelRunner};

/// Instruction budget per (partial) run; fuzz programs are tiny, so
/// hitting this means a hang and is reported as a failure.
pub const RUN_BUDGET: u64 = 2_000_000;

/// Every accelerator mode a case is checked under.
pub const ACCELS: [LinkAccel; 3] = [LinkAccel::Off, LinkAccel::Abtb, LinkAccel::AbtbNoBloom];

/// Both trampoline flavors a case is checked under.
pub const FLAVORS: [TrampolineFlavor; 2] = [TrampolineFlavor::X86, TrampolineFlavor::Arm];

/// The paper's §3.3 context-switch policies for ABTB state: flush the
/// ABTB (and Bloom filter) at every switch, or salt its keys with the
/// ASID and retain entries across switches. Multi-process cases are
/// checked under both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchPolicy {
    /// `flush_abtb_on_context_switch = true` (the default hardware).
    FlushOnSwitch,
    /// ASID-tagged retention: switches never flush; correctness rests
    /// on the salted ABTB keys plus the *unsalted* Bloom keys.
    AsidTagged,
}

/// Both §3.3 policies a multi-process case is checked under.
pub const POLICIES: [SwitchPolicy; 2] = [SwitchPolicy::FlushOnSwitch, SwitchPolicy::AsidTagged];

impl From<SwitchPolicy> for PolicyCtx {
    fn from(p: SwitchPolicy) -> PolicyCtx {
        match p {
            SwitchPolicy::FlushOnSwitch => PolicyCtx::FlushOnSwitch,
            SwitchPolicy::AsidTagged => PolicyCtx::AsidTagged,
        }
    }
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fold64(mut hash: u64, value: u64) -> u64 {
    for b in value.to_le_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV fold of a string (corpus texts into the report digest).
pub(crate) fn fold_str(mut hash: u64, s: &str) -> u64 {
    for &b in s.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Fault-injection mode for the system side of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Events are applied through the correct runtime entry points
    /// (`System::unbind_library` / `System::rebind_symbol`).
    None,
    /// The intentional stale-ABTB bug (test hook): unbind/rebind GOT
    /// rewrites are raw memory writes — no store-path notification for
    /// the Bloom filter, no explicit ABTB invalidate, no resolver-table
    /// update. The §3.4 failure mode the harness must detect.
    DropInvalidate,
}

/// Trampoline length in instructions for the instruction-count
/// identity `insts(Off) = insts(mode) + skips × len`.
fn trampoline_len(flavor: TrampolineFlavor) -> u64 {
    match flavor {
        TrampolineFlavor::X86 => 1,
        TrampolineFlavor::Arm => 3,
    }
}

struct OracleRun {
    digest: ArchDigest,
    resolver_invocations: u64,
}

struct SystemRun {
    digest: ArchDigest,
    counters: PerfCounters,
    /// One entry per applied schedule event: its kind and the counter
    /// window around it (cumulative counters at the event, delta from
    /// the event to the end of the run) — the coverage map's event
    /// facets are computed from these.
    events: Vec<(EventKind, EventWindow)>,
    /// Outcome of every prelink restore the run performed: the boot
    /// restore (when started in prelink mode) followed by every mid-run
    /// `prelink` schedule event.
    prelink: Vec<RestoreOutcome>,
}

/// Converts `(kind, counters-at-event)` snapshots into event windows
/// once the run's final counters are known.
fn close_windows(
    snaps: Vec<(EventKind, PerfCounters)>,
    final_counters: &PerfCounters,
) -> Vec<(EventKind, EventWindow)> {
    snaps
        .into_iter()
        .map(|(kind, before)| {
            (
                kind,
                EventWindow {
                    after: final_counters.delta(&before),
                    before,
                },
            )
        })
        .collect()
}

fn link_options(case: &FuzzCase, flavor: TrampolineFlavor) -> LinkOptions {
    LinkOptions {
        mode: case.mode,
        flavor,
        hw_level: case.hw_level,
        demand_paging: case.demand,
        ..LinkOptions::default()
    }
}

/// Warm-up leg of the prelink axis: runs the case's program straight to
/// halt with *no* schedule events — the "warmed process" whose
/// resolution tables prelink freezes — and serializes its snapshot.
fn warm_snapshot_bytes(case: &FuzzCase, flavor: TrampolineFlavor) -> Result<Vec<u8>, String> {
    let specs = case.modules();
    let mut oracle = Oracle::new(&specs, link_options(case, flavor), "main")
        .map_err(|e| format!("warm oracle load: {e}"))?;
    oracle
        .run(RUN_BUDGET)
        .map_err(|e| format!("warm oracle run: {e}"))?;
    if !oracle.halted() {
        return Err("warm oracle exhausted its instruction budget".to_owned());
    }
    Ok(oracle.capture_snapshot().encode())
}

fn run_oracle(
    case: &FuzzCase,
    flavor: TrampolineFlavor,
    boot: Option<&ResolutionSnapshot>,
) -> Result<OracleRun, String> {
    let specs = case.modules();
    let mut oracle = Oracle::new(&specs, link_options(case, flavor), "main")
        .map_err(|e| format!("oracle load: {e}"))?;
    if let Some(snapshot) = boot {
        // The oracle always validates restores; a fingerprint mismatch
        // falls back to lazy binding, which is itself well-defined.
        oracle
            .restore_snapshot(snapshot)
            .map_err(|e| format!("oracle boot restore: {e}"))?;
    }
    for ev in &case.schedule {
        oracle
            .run_until_marks(ev.at_mark, RUN_BUDGET)
            .map_err(|e| format!("oracle run: {e}"))?;
        if !case.applicable(&ev.event) {
            continue;
        }
        match ev.event {
            // Architecturally invisible by definition; the oracle has
            // nothing to flush. Page eviction is likewise pure
            // microarchitecture: the system faults the page back in.
            FuzzEvent::ContextSwitch
            | FuzzEvent::AbtbInvalidate
            | FuzzEvent::EvictColdPage { .. } => {}
            FuzzEvent::Unbind { lib } => {
                oracle
                    .apply_unbind(&format!("lib{lib}"))
                    .map_err(|e| format!("oracle unbind: {e}"))?;
            }
            FuzzEvent::Rebind { lib } => {
                oracle
                    .apply_rebind(&format!("f{lib}"), "shadow")
                    .map_err(|e| format!("oracle rebind: {e}"))?;
            }
            FuzzEvent::DlcloseModule { lib } => {
                oracle
                    .apply_dlclose(&format!("lib{lib}"))
                    .map_err(|e| format!("oracle dlclose: {e}"))?;
            }
            FuzzEvent::ReopenModule { lib } => {
                oracle
                    .apply_reopen(&format!("lib{lib}"))
                    .map_err(|e| format!("oracle reopen: {e}"))?;
            }
            FuzzEvent::PrelinkRestore => {
                oracle
                    .apply_prelink_restore()
                    .map_err(|e| format!("oracle prelink restore: {e}"))?;
            }
        }
    }
    oracle
        .run(RUN_BUDGET)
        .map_err(|e| format!("oracle run: {e}"))?;
    if !oracle.halted() {
        return Err("oracle exhausted its instruction budget".to_owned());
    }
    Ok(OracleRun {
        digest: oracle.digest(),
        resolver_invocations: oracle.resolver_invocations(),
    })
}

/// Applies one schedule event to the system; a `prelink` event reports
/// its [`RestoreOutcome`] back for the coverage map, everything else
/// returns `None`.
fn apply_system_event(
    sys: &mut System,
    event: FuzzEvent,
    injection: Injection,
) -> Result<Option<RestoreOutcome>, String> {
    match event {
        FuzzEvent::ContextSwitch => {
            sys.context_switch();
            Ok(None)
        }
        FuzzEvent::AbtbInvalidate => {
            sys.machine_mut().invalidate_abtb();
            Ok(None)
        }
        FuzzEvent::Unbind { lib } => {
            let name = format!("lib{lib}");
            match injection {
                Injection::None => sys
                    .unbind_library(&name)
                    .map(|_| None)
                    .map_err(|e| format!("unbind: {e}")),
                Injection::DropInvalidate => {
                    let writes = sys.image().unbind_writes_for(&name);
                    for (slot, stub) in writes {
                        sys.machine_mut()
                            .space_mut()
                            .write_u64(slot, stub.as_u64())
                            .map_err(|e| format!("raw unbind write: {e}"))?;
                    }
                    Ok(None)
                }
            }
        }
        FuzzEvent::Rebind { lib } => {
            let symbol = format!("f{lib}");
            match injection {
                Injection::None => sys
                    .rebind_symbol(&symbol, "shadow")
                    .map(|_| None)
                    .map_err(|e| format!("rebind: {e}")),
                Injection::DropInvalidate => {
                    let target = sys
                        .image()
                        .module("shadow")
                        .and_then(|m| m.export(&symbol))
                        .ok_or_else(|| format!("shadow does not export {symbol}"))?;
                    let slots: Vec<_> = sys
                        .image()
                        .modules()
                        .iter()
                        .flat_map(|m| m.plt_slots.iter())
                        .filter(|s| s.symbol == symbol)
                        .map(|s| s.got_slot)
                        .collect();
                    for slot in slots {
                        sys.machine_mut()
                            .space_mut()
                            .write_u64(slot, target.as_u64())
                            .map_err(|e| format!("raw rebind write: {e}"))?;
                    }
                    Ok(None)
                }
            }
        }
        // The demand-event class has its own bug model: the
        // `demand_invalidate` machine knob (see
        // [`check_case_with_demand_invalidation`]), not `Injection` —
        // so these always go through the real runtime entry points.
        FuzzEvent::EvictColdPage { lib, page } => sys
            .evict_lib_page(&format!("lib{lib}"), page)
            .map(|_| None)
            .map_err(|e| format!("evict: {e}")),
        FuzzEvent::DlcloseModule { lib } => sys
            .dlclose(&format!("lib{lib}"))
            .map(|_| None)
            .map_err(|e| format!("dlclose: {e}")),
        FuzzEvent::ReopenModule { lib } => sys
            .dlreopen(&format!("lib{lib}"))
            .map(|_| None)
            .map_err(|e| format!("reopen: {e}")),
        // Prelink's bug model is the `prelink_validate` machine knob
        // (see [`check_case_with_prelink_validation`]), not `Injection`.
        FuzzEvent::PrelinkRestore => sys
            .prelink_restore_self()
            .map(Some)
            .map_err(|e| format!("prelink restore: {e}")),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_system(
    case: &FuzzCase,
    flavor: TrampolineFlavor,
    accel: LinkAccel,
    injection: Injection,
    demand_invalidate: bool,
    prelink_validate: bool,
    superblock: bool,
    superblock_validate: bool,
    boot: Option<&ResolutionSnapshot>,
) -> Result<SystemRun, String> {
    let mut builder = SystemBuilder::new()
        .modules(case.modules())
        .link_mode(case.mode)
        .trampoline_flavor(flavor)
        .hw_level(case.hw_level)
        .demand_paging(case.demand)
        .machine_config(MachineConfig {
            demand_invalidate,
            prelink_validate,
            superblock,
            superblock_validate,
            ..MachineConfig::baseline()
        })
        .accel(accel);
    if let Some(snapshot) = boot {
        builder = builder.prelink_snapshot(snapshot.clone());
    }
    let mut sys = builder.build().map_err(|e| format!("system build: {e}"))?;
    let mut prelink: Vec<RestoreOutcome> = sys.prelink_outcome().into_iter().collect();
    let mut snaps: Vec<(EventKind, PerfCounters)> = Vec::new();
    for ev in &case.schedule {
        sys.run_until_marks(ev.at_mark as usize, RUN_BUDGET)
            .map_err(|e| format!("system run: {e}"))?;
        if !case.applicable(&ev.event) {
            continue;
        }
        snaps.push((EventKind::from(&ev.event), sys.counters()));
        if let Some(outcome) = apply_system_event(&mut sys, ev.event, injection)? {
            prelink.push(outcome);
        }
    }
    sys.run(RUN_BUDGET)
        .map_err(|e| format!("system run: {e}"))?;
    if !sys.machine().halted() {
        return Err("system exhausted its instruction budget".to_owned());
    }
    let digest = ArchDigest::capture(
        |r| sys.reg(r),
        sys.machine().pc(),
        sys.machine().halted(),
        sys.machine().space(),
        sys.image(),
    );
    let counters = sys.counters();
    Ok(SystemRun {
        digest,
        events: close_windows(snaps, &counters),
        counters,
        prelink,
    })
}

/// Counter cross-checks for one system run against the oracle and the
/// baseline (`Off`) run of the same flavor.
fn check_counters(
    case: &FuzzCase,
    flavor: TrampolineFlavor,
    accel: LinkAccel,
    counters: &PerfCounters,
    baseline: Option<&PerfCounters>,
    oracle: &OracleRun,
) -> Vec<String> {
    let mut failures = Vec::new();
    let c = counters;
    if !accel.has_abtb()
        && (c.trampolines_skipped != 0
            || c.abtb_hits != 0
            || c.abtb_flushes != 0
            || c.abtb_inserts != 0
            || c.btb_function_trains != 0)
    {
        failures.push(format!(
            "baseline machine touched the ABTB: skipped={} hits={} flushes={} inserts={} fn-trains={}",
            c.trampolines_skipped, c.abtb_hits, c.abtb_flushes, c.abtb_inserts, c.btb_function_trains
        ));
    }
    if !accel.has_bloom() && c.bloom_store_hits != 0 {
        failures.push(format!(
            "machine without a Bloom filter reported {} Bloom store hit(s)",
            c.bloom_store_hits
        ));
    }
    if c.trampolines_skipped > c.abtb_hits {
        failures.push(format!(
            "trampolines_skipped {} exceeds abtb_hits {}",
            c.trampolines_skipped, c.abtb_hits
        ));
    }
    if c.abtb_hits > c.branches {
        failures.push(format!(
            "abtb_hits {} exceeds retired branches {}",
            c.abtb_hits, c.branches
        ));
    }
    if c.resolver_invocations != oracle.resolver_invocations {
        failures.push(format!(
            "resolver ran {} time(s), oracle ran it {}",
            c.resolver_invocations, oracle.resolver_invocations
        ));
    }
    if let Some(base) = baseline {
        let expected = c
            .instructions
            .saturating_add(c.trampolines_skipped.saturating_mul(trampoline_len(flavor)));
        if base.instructions != expected {
            failures.push(format!(
                "instruction identity broken: baseline {} != {} + {} skips x {}",
                base.instructions,
                c.instructions,
                c.trampolines_skipped,
                trampoline_len(flavor)
            ));
        }
    }
    if accel.has_abtb() {
        let injected_flushes = case
            .schedule
            .iter()
            .filter(|e| {
                matches!(
                    e.event,
                    FuzzEvent::ContextSwitch | FuzzEvent::AbtbInvalidate
                )
            })
            .count() as u64;
        if c.abtb_flushes < injected_flushes {
            failures.push(format!(
                "only {} ABTB flush(es) for {} injected flush event(s)",
                c.abtb_flushes, injected_flushes
            ));
        }
    }
    failures
}

/// Outcome of checking one fuzz case across every mode and flavor.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The case's seed.
    pub seed: u64,
    /// FNV fold of the oracle digests (both flavors) — the value that
    /// must be byte-identical at every `--jobs` level.
    pub digest_fold: u64,
    /// Human-readable failure descriptions; empty means the case passed.
    pub failures: Vec<String>,
}

/// Runs one case through the oracle and through the system under every
/// `LinkAccel` mode and both trampoline flavors, collecting divergences
/// and counter-invariant violations.
pub fn check_case(case: &FuzzCase, injection: Injection) -> CaseReport {
    check_case_coverage(case, injection).0
}

/// [`check_case`] with the machine's demand-GC invalidation knob
/// switched explicitly. `invalidate = false` is the negative control
/// for the demand-paging event class: `dlclose` still re-arms GOT
/// slots and unmaps the module's code pages, but skips the explicit
/// ABTB/BTB/predecode invalidation — so a trained machine keeps
/// skipping into the unmapped (or later recycled) page and diverges
/// from the oracle. The checked-in
/// `corpus/stale_skip_unmapped_page.txt` witness pins exactly this.
pub fn check_case_with_demand_invalidation(
    case: &FuzzCase,
    injection: Injection,
    invalidate: bool,
) -> CaseReport {
    check_case_coverage_full(case, injection, invalidate, true, false, true, true).0
}

/// [`check_case`] with the superblock translation engine switched
/// explicitly: the scriptable A/B axis (`difftest --no-superblock`
/// runs the pure interpreter). Translation is architecturally
/// invisible, so both settings must produce identical reports — the
/// corpus replay and CI engine-equality shard pin exactly this.
pub fn check_case_with_superblock(
    case: &FuzzCase,
    injection: Injection,
    superblock: bool,
) -> CaseReport {
    check_case_coverage_full(case, injection, true, true, false, superblock, true).0
}

/// [`check_case`] with the machine's superblock tag-revalidation knob
/// switched explicitly. `validate = false` is the negative control: the
/// translation cache keeps dispatching blocks whose invalidation tags
/// (code version, PLT epoch, eviction generation) have moved on — a
/// model of a JIT whose shootdowns are skipped. A runtime code patch or
/// module GC then leaves a stale translation executing dead
/// instructions and the system diverges from the oracle, mirroring the
/// `demand_invalidate`/`prelink_validate` discipline.
pub fn check_case_with_superblock_validation(
    case: &FuzzCase,
    injection: Injection,
    validate: bool,
) -> CaseReport {
    check_case_coverage_full(case, injection, true, true, false, true, validate).0
}

/// [`check_case`] with the machine's prelink-validation knob switched
/// explicitly. `validate = false` is the negative control for the
/// stable-linking subsystem: restores replay snapshot entries verbatim
/// — no fingerprint gate, no per-entry staleness check — so an entry
/// tombstoned by an earlier `dlclose` is re-armed into GC-unmapped
/// code, while the oracle (which always validates) skips it. The
/// checked-in `corpus/stale_prelink_restore.txt` witness pins exactly
/// this.
pub fn check_case_with_prelink_validation(
    case: &FuzzCase,
    injection: Injection,
    validate: bool,
) -> CaseReport {
    check_case_coverage_full(case, injection, true, validate, false, true, true).0
}

/// [`check_case`] plus the behavioral [`CoverageMap`] the case's system
/// runs exercised: every run's counter delta and every applied event
/// window is recorded on the [`PolicyCtx::SingleProcess`] plane. The
/// map is a pure function of the case (the same runs already paid for),
/// so coverage-guided scheduling costs no extra simulation.
pub fn check_case_coverage(case: &FuzzCase, injection: Injection) -> (CaseReport, CoverageMap) {
    check_case_coverage_full(case, injection, true, true, false, true, true)
}

/// [`check_case_coverage`] with the `--prelink` axis enabled: on top of
/// the lazy matrix, a warm-up snapshot is captured, serialized,
/// round-tripped and restored at boot into a prelink oracle plus a
/// prelink system run per accel mode (see the module docs). The extra
/// digests are compared pairwise, never folded into
/// [`CaseReport::digest_fold`].
pub fn check_case_coverage_prelink(
    case: &FuzzCase,
    injection: Injection,
) -> (CaseReport, CoverageMap) {
    check_case_coverage_full(case, injection, true, true, true, true, true)
}

fn check_case_coverage_full(
    case: &FuzzCase,
    injection: Injection,
    demand_invalidate: bool,
    prelink_validate: bool,
    prelink: bool,
    superblock: bool,
    superblock_validate: bool,
) -> (CaseReport, CoverageMap) {
    let mut failures = Vec::new();
    let mut digest_fold = FNV_OFFSET;
    let mut coverage = CoverageMap::new();
    for &flavor in &FLAVORS {
        let oracle = match run_oracle(case, flavor, None) {
            Ok(o) => o,
            Err(e) => {
                failures.push(format!("[{flavor:?}/oracle] {e}"));
                continue;
            }
        };
        digest_fold = fold64(digest_fold, oracle.digest.fold());
        let mut baseline: Option<PerfCounters> = None;
        for &accel in &ACCELS {
            match run_system(
                case,
                flavor,
                accel,
                injection,
                demand_invalidate,
                prelink_validate,
                superblock,
                superblock_validate,
                None,
            ) {
                Err(e) => failures.push(format!("[{flavor:?}/{accel:?}] {e}")),
                Ok(run) => {
                    coverage.record_run(accel, PolicyCtx::SingleProcess, &run.counters);
                    for (kind, window) in &run.events {
                        coverage.record_event(accel, PolicyCtx::SingleProcess, *kind, window);
                    }
                    for outcome in &run.prelink {
                        coverage.record_prelink(accel, PolicyCtx::SingleProcess, outcome);
                    }
                    if run.digest != oracle.digest {
                        failures.push(format!(
                            "[{flavor:?}/{accel:?}] architectural divergence: {}",
                            oracle.digest.describe_diff(&run.digest)
                        ));
                    }
                    for msg in check_counters(
                        case,
                        flavor,
                        accel,
                        &run.counters,
                        baseline.as_ref(),
                        &oracle,
                    ) {
                        failures.push(format!("[{flavor:?}/{accel:?}] {msg}"));
                    }
                    if accel == LinkAccel::Off {
                        baseline = Some(run.counters);
                    }
                }
            }
        }
        if prelink {
            match prelink_arm(
                case,
                flavor,
                injection,
                demand_invalidate,
                prelink_validate,
                superblock,
                superblock_validate,
                &mut coverage,
            ) {
                Ok(msgs) => failures.extend(msgs),
                Err(e) => failures.push(format!("[{flavor:?}/prelink] {e}")),
            }
        }
    }
    (
        CaseReport {
            seed: case.seed,
            digest_fold,
            failures,
        },
        coverage,
    )
}

/// The prelink round for one `(case, flavor)`: warm-up capture,
/// `DLSN` round-trip, prelink-oracle golden run, and one prelink system
/// run per accel mode checked against it (digest plus the full counter
/// invariants). Returns the failure lines; a hard `Err` means the
/// golden side itself could not be produced.
#[allow(clippy::too_many_arguments)]
fn prelink_arm(
    case: &FuzzCase,
    flavor: TrampolineFlavor,
    injection: Injection,
    demand_invalidate: bool,
    prelink_validate: bool,
    superblock: bool,
    superblock_validate: bool,
    coverage: &mut CoverageMap,
) -> Result<Vec<String>, String> {
    let bytes = warm_snapshot_bytes(case, flavor)?;
    let snapshot =
        ResolutionSnapshot::decode(&bytes).map_err(|e| format!("snapshot round-trip: {e}"))?;
    let oracle = run_oracle(case, flavor, Some(&snapshot))?;
    let mut failures = Vec::new();
    let mut baseline: Option<PerfCounters> = None;
    for &accel in &ACCELS {
        match run_system(
            case,
            flavor,
            accel,
            injection,
            demand_invalidate,
            prelink_validate,
            superblock,
            superblock_validate,
            Some(&snapshot),
        ) {
            Err(e) => failures.push(format!("[{flavor:?}/{accel:?}/prelink] {e}")),
            Ok(run) => {
                for outcome in &run.prelink {
                    coverage.record_prelink(accel, PolicyCtx::SingleProcess, outcome);
                }
                if run.digest != oracle.digest {
                    failures.push(format!(
                        "[{flavor:?}/{accel:?}/prelink] architectural divergence: {}",
                        oracle.digest.describe_diff(&run.digest)
                    ));
                }
                for msg in check_counters(
                    case,
                    flavor,
                    accel,
                    &run.counters,
                    baseline.as_ref(),
                    &oracle,
                ) {
                    failures.push(format!("[{flavor:?}/{accel:?}/prelink] {msg}"));
                }
                if accel == LinkAccel::Off {
                    baseline = Some(run.counters);
                }
            }
        }
    }
    Ok(failures)
}

/// Aggregate result of a [`run_difftest`] sweep.
#[derive(Debug)]
pub struct DiffReport {
    /// The full report text (stdout of the `difftest` binary); built in
    /// submission order, so byte-identical at every `--jobs` level.
    pub output: String,
    /// Total failure lines across all cases.
    pub failures: usize,
    /// Number of cases checked.
    pub cases: u64,
    /// FNV fold of every case's digest fold.
    pub digest: u64,
    /// Behavioral-coverage count: distinct [`CoverageMap`] keys the
    /// whole sweep exercised (merged in submission order).
    pub coverage: usize,
}

/// Checks `cases` consecutive seeds starting at `seed_start`, sharded
/// over `jobs` workers. When `shrink` is set and at least one case
/// fails, the first failing case is delta-debugged to a minimal
/// reproducer which is appended to the report.
///
/// `demand` turns every generated case into a demand-paging case
/// *after* generation (via [`FuzzCase::enable_demand`], salted with the
/// case seed), so the demand-off report — and its state digest — stays
/// bit-identical to the historical sweep.
///
/// `prelink` enables the stable-linking axis: every case additionally
/// round-trips a warm-up snapshot through the `DLSN` format and checks
/// boot-restored system runs against a boot-restored oracle. The extra
/// runs never fold into the state digest, so the `--prelink` digest is
/// byte-identical to the lazy sweep's.
///
/// `superblock = false` forces every system leg onto the pure
/// interpreter (the oracle never translates either way). Translation is
/// architecturally invisible, so the digest must be byte-identical at
/// both settings — `difftest --no-superblock` scripts exactly this A/B.
#[allow(clippy::too_many_arguments)]
pub fn run_difftest(
    seed_start: u64,
    cases: u64,
    jobs: usize,
    injection: Injection,
    shrink: bool,
    demand: bool,
    prelink: bool,
    superblock: bool,
) -> DiffReport {
    let gen_case = move |seed: u64| {
        let mut case = FuzzCase::generate(seed);
        if demand {
            case.enable_demand(seed);
        }
        case
    };
    let check = move |case: &FuzzCase| {
        check_case_coverage_full(case, injection, true, true, prelink, superblock, true)
    };
    let cells: Vec<Cell<(CaseReport, CoverageMap)>> = (0..cases)
        .map(|i| {
            let seed = seed_start + i;
            Cell::new(format!("seed{seed}"), move |_ctx| check(&gen_case(seed)))
        })
        .collect();
    let report = ParallelRunner::new(jobs).run(seed_start ^ 0xd1ff_7e57, cells);

    let mut output = format!(
        "difftest: {cases} case(s), seeds {seed_start}..{}, {{Off,Abtb,AbtbNoBloom}} x {{X86,Arm}}{}{}{}\n",
        seed_start + cases,
        if demand {
            ", demand-fault events enabled"
        } else {
            ""
        },
        if prelink {
            ", prelink restore enabled"
        } else {
            ""
        },
        match injection {
            Injection::None => "",
            Injection::DropInvalidate => ", injecting stale-ABTB bug",
        }
    );
    let mut digest = FNV_OFFSET;
    let mut coverage = CoverageMap::new();
    let mut failures = 0usize;
    let mut first_failing: Option<u64> = None;
    for cell in report.cells {
        match cell.outcome {
            CellOutcome::Done((r, map)) => {
                digest = fold64(digest, r.digest_fold);
                coverage.merge(&map);
                if !r.failures.is_empty() && first_failing.is_none() {
                    first_failing = Some(r.seed);
                }
                for f in &r.failures {
                    output.push_str(&format!("FAIL seed {}: {f}\n", r.seed));
                    failures += 1;
                }
            }
            CellOutcome::Panicked(msg) => {
                output.push_str(&format!("FAIL {}: panicked: {msg}\n", cell.label));
                failures += 1;
            }
        }
    }

    if let Some(seed) = first_failing.filter(|_| shrink) {
        let case = gen_case(seed);
        let shrunk = shrink_case(&case, |c| !check(c).0.failures.is_empty());
        output.push_str(&format!("shrunk minimal reproducer for seed {seed}:\n"));
        output.push_str(&format!("  {shrunk}\n"));
        for f in check(&shrunk).0.failures {
            output.push_str(&format!("  {f}\n"));
        }
    }

    if prelink {
        output.push_str(&format!(
            "difftest: prelink coverage {} key(s)\n",
            coverage.count_prelink_facets()
        ));
    }
    output.push_str(&format!(
        "difftest: {failures} failure(s) across {cases} case(s); coverage {} key(s); state digest {digest:#018x}\n",
        coverage.count()
    ));
    DiffReport {
        output,
        failures,
        cases,
        digest,
        coverage: coverage.count(),
    }
}

// ---------------------------------------------------------------------------
// Multi-process difftest (paper §3.3)
// ---------------------------------------------------------------------------

struct MultiOracleRun {
    digests: Vec<ArchDigest>,
    resolver_invocations: u64,
}

struct MultiSystemRun {
    digests: Vec<ArchDigest>,
    counters: PerfCounters,
    /// Per-core counter snapshots; `counters` is their sum. One entry on
    /// a 1-core machine, so the per-core invariants degenerate to the
    /// aggregate ones there.
    per_core: Vec<PerfCounters>,
    /// Displacements: switches that landed a process on a core which
    /// last ran a different process (equal to plain switches on 1 core).
    thread_switches: u64,
    thread_switches_per_core: Vec<u64>,
    /// Applied schedule events with their counter windows (see
    /// [`SystemRun::events`]); inapplicable no-op events are skipped.
    events: Vec<(EventKind, EventWindow)>,
    /// Prelink restore outcomes: per-process boot restores (when
    /// started in prelink mode) followed by mid-run `prelink` events.
    prelink: Vec<RestoreOutcome>,
}

fn multi_machine_config(
    accel: LinkAccel,
    policy: SwitchPolicy,
    coherence_bus: bool,
    demand_invalidate: bool,
    prelink_validate: bool,
    superblock: bool,
) -> MachineConfig {
    MachineConfig {
        accel,
        flush_abtb_on_context_switch: matches!(policy, SwitchPolicy::FlushOnSwitch),
        coherence_bus,
        demand_invalidate,
        prelink_validate,
        superblock,
        ..MachineConfig::default()
    }
}

/// Builds a fresh multi-process oracle for `case`. Demand paging is
/// architecturally invisible, so (as before the prelink axis) the
/// per-process link options are used as-is.
fn build_multi_oracle(
    case: &MultiFuzzCase,
    flavor: TrampolineFlavor,
) -> Result<MultiOracle, String> {
    let mut oracles = Vec::with_capacity(case.procs.len());
    for (p, proc) in case.procs.iter().enumerate() {
        let specs = proc.modules();
        oracles.push(
            Oracle::new(&specs, link_options(proc, flavor), "main")
                .map_err(|e| format!("oracle load (process {p}): {e}"))?,
        );
    }
    Ok(MultiOracle::new(oracles, case.shared_got_pair))
}

/// Multi-process warm-up leg: runs every process straight to halt with
/// no schedule events and serializes each one's snapshot.
fn warm_multi_snapshot_bytes(
    case: &MultiFuzzCase,
    flavor: TrampolineFlavor,
) -> Result<Vec<Vec<u8>>, String> {
    let mut mo = build_multi_oracle(case, flavor)?;
    for p in 0..mo.n_procs() {
        mo.switch_to(p);
        mo.run_active(RUN_BUDGET)
            .map_err(|e| format!("warm oracle run (process {p}): {e}"))?;
        if !mo.oracle(p).halted() {
            return Err(format!(
                "warm oracle process {p} exhausted its instruction budget"
            ));
        }
    }
    Ok((0..mo.n_procs())
        .map(|p| mo.capture_snapshot_of(p).encode())
        .collect())
}

fn run_multi_oracle(
    case: &MultiFuzzCase,
    flavor: TrampolineFlavor,
    boot: Option<&[ResolutionSnapshot]>,
) -> Result<MultiOracleRun, String> {
    let mut mo = build_multi_oracle(case, flavor)?;
    if let Some(snapshots) = boot {
        for (p, snapshot) in snapshots.iter().enumerate() {
            mo.restore_snapshot_for(p, snapshot)
                .map_err(|e| format!("oracle boot restore (process {p}): {e}"))?;
        }
    }
    for ev in &case.schedule {
        mo.run_active_until_marks(ev.at_mark, RUN_BUDGET)
            .map_err(|e| format!("oracle run (process {}): {e}", mo.active()))?;
        if !case.applicable(mo.active(), &ev.event) {
            continue;
        }
        match ev.event {
            MultiFuzzEvent::Switch { to } => {
                mo.switch_to(to);
            }
            // Architecturally invisible; the oracle has nothing to
            // flush — and nothing to fault out or back in.
            MultiFuzzEvent::AbtbInvalidate | MultiFuzzEvent::EvictColdPage { .. } => {}
            MultiFuzzEvent::Unbind { lib } => {
                mo.apply_unbind_active(&format!("lib{lib}"))
                    .map_err(|e| format!("oracle unbind (process {}): {e}", mo.active()))?;
            }
            MultiFuzzEvent::Rebind { lib } => {
                mo.apply_rebind_active(&format!("f{lib}"), "shadow")
                    .map_err(|e| format!("oracle rebind (process {}): {e}", mo.active()))?;
            }
            MultiFuzzEvent::DlcloseModule { lib } => {
                mo.apply_dlclose_active(&format!("lib{lib}"))
                    .map_err(|e| format!("oracle dlclose (process {}): {e}", mo.active()))?;
            }
            MultiFuzzEvent::ReopenModule { lib } => {
                mo.apply_reopen_active(&format!("lib{lib}"))
                    .map_err(|e| format!("oracle reopen (process {}): {e}", mo.active()))?;
            }
            MultiFuzzEvent::PrelinkRestore => {
                mo.apply_prelink_restore_active().map_err(|e| {
                    format!("oracle prelink restore (process {}): {e}", mo.active())
                })?;
            }
        }
    }
    for p in 0..mo.n_procs() {
        mo.switch_to(p);
        mo.run_active(RUN_BUDGET)
            .map_err(|e| format!("oracle run (process {p}): {e}"))?;
        if !mo.oracle(p).halted() {
            return Err(format!(
                "oracle process {p} exhausted its instruction budget"
            ));
        }
    }
    Ok(MultiOracleRun {
        digests: mo.digests(),
        resolver_invocations: mo.resolver_invocations(),
    })
}

/// Applies one schedule event to the multi-process system; a `prelink`
/// event reports its [`RestoreOutcome`] back for the coverage map.
fn apply_multi_system_event(
    mps: &mut MultiProcessSystem,
    event: MultiFuzzEvent,
    injection: Injection,
) -> Result<Option<RestoreOutcome>, String> {
    match event {
        MultiFuzzEvent::Switch { to } => {
            mps.switch_to(to);
            Ok(None)
        }
        MultiFuzzEvent::AbtbInvalidate => {
            mps.invalidate_abtb();
            Ok(None)
        }
        MultiFuzzEvent::Unbind { lib } => {
            let name = format!("lib{lib}");
            match injection {
                Injection::None => mps
                    .unbind_active(&name)
                    .map(|_| None)
                    .map_err(|e| format!("unbind: {e}")),
                Injection::DropInvalidate => {
                    let writes = mps.image(mps.active()).unbind_writes_for(&name);
                    for (slot, stub) in writes {
                        mps.machine_mut()
                            .space_mut()
                            .write_u64(slot, stub.as_u64())
                            .map_err(|e| format!("raw unbind write: {e}"))?;
                    }
                    Ok(None)
                }
            }
        }
        MultiFuzzEvent::Rebind { lib } => {
            let symbol = format!("f{lib}");
            match injection {
                Injection::None => mps
                    .rebind_active(&symbol, "shadow")
                    .map(|_| None)
                    .map_err(|e| format!("rebind: {e}")),
                Injection::DropInvalidate => {
                    let image = mps.image(mps.active());
                    let target = image
                        .module("shadow")
                        .and_then(|m| m.export(&symbol))
                        .ok_or_else(|| format!("shadow does not export {symbol}"))?;
                    let slots: Vec<_> = image
                        .modules()
                        .iter()
                        .flat_map(|m| m.plt_slots.iter())
                        .filter(|s| s.symbol == symbol)
                        .map(|s| s.got_slot)
                        .collect();
                    for slot in slots {
                        mps.machine_mut()
                            .space_mut()
                            .write_u64(slot, target.as_u64())
                            .map_err(|e| format!("raw rebind write: {e}"))?;
                    }
                    Ok(None)
                }
            }
        }
        // Demand events use the `demand_invalidate` knob as their bug
        // model, not `Injection` (see [`apply_system_event`]).
        MultiFuzzEvent::EvictColdPage { lib, page } => mps
            .evict_active_page(&format!("lib{lib}"), page)
            .map(|_| None)
            .map_err(|e| format!("evict: {e}")),
        MultiFuzzEvent::DlcloseModule { lib } => mps
            .dlclose_active(&format!("lib{lib}"))
            .map(|_| None)
            .map_err(|e| format!("dlclose: {e}")),
        MultiFuzzEvent::ReopenModule { lib } => mps
            .reopen_active(&format!("lib{lib}"))
            .map(|_| None)
            .map_err(|e| format!("reopen: {e}")),
        // Prelink's bug model is the `prelink_validate` knob, not
        // `Injection` (see [`apply_system_event`]).
        MultiFuzzEvent::PrelinkRestore => mps
            .prelink_restore_active()
            .map(Some)
            .map_err(|e| format!("prelink restore: {e}")),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_multi_system(
    case: &MultiFuzzCase,
    flavor: TrampolineFlavor,
    accel: LinkAccel,
    policy: SwitchPolicy,
    injection: Injection,
    coherence_bus: bool,
    demand_invalidate: bool,
    prelink_validate: bool,
    superblock: bool,
    boot: Option<&[ResolutionSnapshot]>,
) -> Result<MultiSystemRun, String> {
    let procs = case
        .procs
        .iter()
        .map(|p| {
            // The demand flag lives on the multi case, not the per-proc
            // programs; honoured per process under lazy binding.
            let mut opts = link_options(p, flavor);
            opts.demand_paging = case.demand;
            (p.modules(), opts)
        })
        .collect();
    let boot_snapshots = match boot {
        Some(snapshots) => snapshots.iter().cloned().map(Some).collect(),
        None => Vec::new(),
    };
    let mps = MultiProcessSystem::new_with_cores_prelink(
        procs,
        multi_machine_config(
            accel,
            policy,
            coherence_bus,
            demand_invalidate,
            prelink_validate,
            superblock,
        ),
        case.shared_got_pair,
        case.cores.max(1),
        boot_snapshots,
    )
    .map_err(|e| format!("system build: {e}"))?;
    replay_multi_schedule(mps, case, injection)
}

/// The stack mapping every fleet tenant gets — the same 1 MiB the
/// per-process constructors map, so a forked tenant's address space
/// (and hence its [`ArchDigest`]) lines up with the oracle's.
const FLEET_STACK_BYTES: u64 = 1 << 20;

/// System leg of a fleet-smoke case: same replay and capture as
/// [`run_multi_system`], but the machine boots through
/// [`MultiProcessSystem::new_fleet`] — one [`TenantClass`] template
/// loaded once and forked into `procs.len()` tenants sharing a
/// `code_uid` — so the arena boot path itself is what gets difftested,
/// not just benchmarked. Requires every process of `case` to be
/// identical and unpaired ([`MultiFuzzCase::generate_fleet`] guarantees
/// both).
fn run_fleet_system(
    case: &MultiFuzzCase,
    flavor: TrampolineFlavor,
    accel: LinkAccel,
    policy: SwitchPolicy,
    injection: Injection,
) -> Result<MultiSystemRun, String> {
    let template = &case.procs[0];
    if case.procs.iter().any(|p| p != template) {
        return Err("fleet case requires identical tenant programs".to_owned());
    }
    if case.shared_got_pair.is_some() {
        return Err("fleet case cannot carry a shared-GOT pair".to_owned());
    }
    let mut options = link_options(template, flavor);
    options.demand_paging = case.demand;
    let class = TenantClass {
        modules: template.modules(),
        options,
        tenants: case.procs.len(),
    };
    let mps = MultiProcessSystem::new_fleet(
        &[class],
        multi_machine_config(accel, policy, true, true, true, true),
        case.cores.max(1),
        FLEET_STACK_BYTES,
    )
    .map_err(|e| format!("fleet build: {e}"))?;
    replay_multi_schedule(mps, case, injection)
}

/// Replays `case`'s sequential schedule on a booted system, runs every
/// process to halt, and captures per-process digests plus counters —
/// the shared tail of [`run_multi_system`] and [`run_fleet_system`].
fn replay_multi_schedule(
    mut mps: MultiProcessSystem,
    case: &MultiFuzzCase,
    injection: Injection,
) -> Result<MultiSystemRun, String> {
    let mut prelink: Vec<RestoreOutcome> = (0..mps.n_procs())
        .filter_map(|p| mps.prelink_outcome_of(p))
        .collect();
    let mut snaps: Vec<(EventKind, PerfCounters)> = Vec::new();
    for ev in &case.schedule {
        mps.run_active_until_marks(ev.at_mark, RUN_BUDGET)
            .map_err(|e| format!("system run (process {}): {e}", mps.active()))?;
        if !case.applicable(mps.active(), &ev.event) {
            continue;
        }
        snaps.push((EventKind::from(&ev.event), mps.counters()));
        if let Some(outcome) = apply_multi_system_event(&mut mps, ev.event, injection)? {
            prelink.push(outcome);
        }
    }
    for p in 0..mps.n_procs() {
        mps.switch_to(p);
        mps.run_active(RUN_BUDGET)
            .map_err(|e| format!("system run (process {p}): {e}"))?;
        if !mps.halted(p) {
            return Err(format!(
                "system process {p} exhausted its instruction budget"
            ));
        }
    }
    let digests = (0..mps.n_procs())
        .map(|p| {
            ArchDigest::capture(
                |r| mps.reg_of(p, r),
                mps.pc_of(p),
                mps.halted(p),
                mps.space_of(p),
                mps.image(p),
            )
        })
        .collect();
    let counters = mps.counters();
    let per_core = (0..mps.core_count()).map(|c| mps.counters_for(c)).collect();
    let thread_switches_per_core = (0..mps.core_count())
        .map(|c| mps.thread_switches_of(c))
        .collect();
    Ok(MultiSystemRun {
        digests,
        events: close_windows(snaps, &counters),
        counters,
        per_core,
        thread_switches: mps.thread_switches(),
        thread_switches_per_core,
        prelink,
    })
}

/// Counter cross-checks for one multi-process system run. On top of the
/// single-process invariants, the §3.3 policy determines an *exact*
/// switch-flush count: under [`SwitchPolicy::FlushOnSwitch`] every
/// displacement flushes (switch-caused flushes == thread switches — on
/// one core every switch displaces, so this is the old switches
/// identity), under [`SwitchPolicy::AsidTagged`] no switch ever does
/// (== 0); in both the published total must equal switch-caused +
/// coherence-caused. Every purity and consistency invariant is then
/// re-checked *per core* against `Machine::counters_for`, so a rogue
/// core cannot hide inside a clean-looking aggregate.
fn check_multi_counters(
    flavor: TrampolineFlavor,
    accel: LinkAccel,
    policy: SwitchPolicy,
    run: &MultiSystemRun,
    baseline: Option<&PerfCounters>,
    oracle: &MultiOracleRun,
) -> Vec<String> {
    let mut failures = Vec::new();
    let c = &run.counters;
    if !accel.has_abtb()
        && (c.trampolines_skipped != 0
            || c.abtb_hits != 0
            || c.abtb_flushes != 0
            || c.abtb_switch_flushes != 0
            || c.abtb_coherence_flushes != 0
            || c.abtb_inserts != 0
            || c.btb_function_trains != 0)
    {
        failures.push(format!(
            "baseline machine touched the ABTB: skipped={} hits={} flushes={}",
            c.trampolines_skipped, c.abtb_hits, c.abtb_flushes
        ));
    }
    if !accel.has_bloom() && c.bloom_store_hits != 0 {
        failures.push(format!(
            "machine without a Bloom filter reported {} Bloom store hit(s)",
            c.bloom_store_hits
        ));
    }
    if c.trampolines_skipped > c.abtb_hits {
        failures.push(format!(
            "trampolines_skipped {} exceeds abtb_hits {}",
            c.trampolines_skipped, c.abtb_hits
        ));
    }
    if c.abtb_hits > c.branches {
        failures.push(format!(
            "abtb_hits {} exceeds retired branches {}",
            c.abtb_hits, c.branches
        ));
    }
    if c.resolver_invocations != oracle.resolver_invocations {
        failures.push(format!(
            "resolver ran {} time(s), oracle ran it {}",
            c.resolver_invocations, oracle.resolver_invocations
        ));
    }
    if let Some(base) = baseline {
        let expected = c
            .instructions
            .saturating_add(c.trampolines_skipped.saturating_mul(trampoline_len(flavor)));
        if base.instructions != expected {
            failures.push(format!(
                "instruction identity broken: baseline {} != {} + {} skips x {}",
                base.instructions,
                c.instructions,
                c.trampolines_skipped,
                trampoline_len(flavor)
            ));
        }
    }
    if accel.has_abtb() {
        if c.abtb_flushes != c.abtb_switch_flushes + c.abtb_coherence_flushes {
            failures.push(format!(
                "flush counters inconsistent: total {} != switch {} + coherence {}",
                c.abtb_flushes, c.abtb_switch_flushes, c.abtb_coherence_flushes
            ));
        }
        match policy {
            SwitchPolicy::FlushOnSwitch => {
                if c.abtb_switch_flushes != run.thread_switches {
                    failures.push(format!(
                        "flush-on-switch: {} switch flush(es) for {} context switch(es)",
                        c.abtb_switch_flushes, run.thread_switches
                    ));
                }
            }
            SwitchPolicy::AsidTagged => {
                if c.abtb_switch_flushes != 0 {
                    failures.push(format!(
                        "ASID-tagged machine flushed on {} switch(es)",
                        c.abtb_switch_flushes
                    ));
                }
            }
        }
    }
    for (i, pc) in run.per_core.iter().enumerate() {
        if !accel.has_abtb()
            && (pc.trampolines_skipped != 0
                || pc.abtb_hits != 0
                || pc.abtb_flushes != 0
                || pc.abtb_switch_flushes != 0
                || pc.abtb_coherence_flushes != 0
                || pc.abtb_inserts != 0
                || pc.btb_function_trains != 0)
        {
            failures.push(format!(
                "core {i} of a baseline machine touched the ABTB: skipped={} hits={} flushes={}",
                pc.trampolines_skipped, pc.abtb_hits, pc.abtb_flushes
            ));
        }
        if !accel.has_bloom() && pc.bloom_store_hits != 0 {
            failures.push(format!(
                "core {i} without a Bloom filter reported {} Bloom store hit(s)",
                pc.bloom_store_hits
            ));
        }
        if pc.trampolines_skipped > pc.abtb_hits {
            failures.push(format!(
                "core {i}: trampolines_skipped {} exceeds abtb_hits {}",
                pc.trampolines_skipped, pc.abtb_hits
            ));
        }
        if pc.abtb_hits > pc.branches {
            failures.push(format!(
                "core {i}: abtb_hits {} exceeds retired branches {}",
                pc.abtb_hits, pc.branches
            ));
        }
        if accel.has_abtb() {
            if pc.abtb_flushes != pc.abtb_switch_flushes + pc.abtb_coherence_flushes {
                failures.push(format!(
                    "core {i} flush counters inconsistent: total {} != switch {} + coherence {}",
                    pc.abtb_flushes, pc.abtb_switch_flushes, pc.abtb_coherence_flushes
                ));
            }
            let want = match policy {
                SwitchPolicy::FlushOnSwitch => run.thread_switches_per_core[i],
                SwitchPolicy::AsidTagged => 0,
            };
            if pc.abtb_switch_flushes != want {
                failures.push(format!(
                    "core {i} under {policy:?}: {} switch flush(es) for {} displacement(s)",
                    pc.abtb_switch_flushes, run.thread_switches_per_core[i]
                ));
            }
        }
    }
    failures
}

/// Runs one multi-process case through the [`MultiOracle`] and through
/// [`MultiProcessSystem`] under every `LinkAccel` mode, both trampoline
/// flavors and both §3.3 switch policies — twelve system runs per case,
/// with per-process digest comparison. The system side honours
/// `case.cores`; the oracle is architectural, so core count never
/// changes the expected digests.
pub fn check_multi_case(case: &MultiFuzzCase, injection: Injection) -> CaseReport {
    check_multi_case_coverage(case, injection).0
}

/// [`check_multi_case`] with the coherence bus switched explicitly.
/// `coherence_bus = false` is the negative control: on a multi-core
/// case, a remote rebind then cannot reach a resident core's Bloom
/// filter, so the stale-skip divergence the §3.2 broadcast exists to
/// prevent becomes observable (the cross-core corpus regression relies
/// on exactly this).
pub fn check_multi_case_with_bus(
    case: &MultiFuzzCase,
    injection: Injection,
    coherence_bus: bool,
) -> CaseReport {
    check_multi_case_coverage_full(case, injection, coherence_bus, true, true, false, true).0
}

/// [`check_multi_case`] with the machine's demand-GC invalidation knob
/// switched explicitly — the multi-process twin of
/// [`check_case_with_demand_invalidation`], and the knob behind the
/// tenant-churn staleness witness: under [`SwitchPolicy::AsidTagged`]
/// a suspended tenant's ABTB entries survive other tenants' time
/// slices, so a `dlclose` whose shootdown is skipped
/// (`invalidate = false`) leaves a retained entry skipping straight
/// into the GC-unmapped range the next time that tenant calls through
/// the slot — while [`SwitchPolicy::FlushOnSwitch`] already destroyed
/// the entry on the way out, masking the bug. The checked-in
/// `corpus/tenant_churn_stale_skip.txt` witness pins exactly this
/// policy-dependent divergence.
pub fn check_multi_case_with_demand_invalidation(
    case: &MultiFuzzCase,
    injection: Injection,
    invalidate: bool,
) -> CaseReport {
    check_multi_case_coverage_full(case, injection, true, invalidate, true, false, true).0
}

/// [`check_multi_case`] with the superblock translation engine switched
/// explicitly — the multi-process twin of [`check_case_with_superblock`].
/// Cross-core shootdowns (patch broadcasts, module GC, demand eviction)
/// must leave the translated path bit-identical to the interpreter, so
/// both settings must match the same oracle digests.
pub fn check_multi_case_with_superblock(
    case: &MultiFuzzCase,
    injection: Injection,
    superblock: bool,
) -> CaseReport {
    check_multi_case_coverage_full(case, injection, true, true, true, false, superblock).0
}

/// [`check_multi_case`] with the machine's prelink-validation knob
/// switched explicitly (see [`check_case_with_prelink_validation`] for
/// the bug model the `validate = false` negative control exposes).
pub fn check_multi_case_with_prelink_validation(
    case: &MultiFuzzCase,
    injection: Injection,
    validate: bool,
) -> CaseReport {
    check_multi_case_coverage_full(case, injection, true, true, validate, false, true).0
}

/// [`check_multi_case`] plus the behavioral [`CoverageMap`] its runs
/// exercised: each system run records onto the §3.3 policy plane it
/// executed under, and multi-core runs additionally record the
/// core-count facets.
pub fn check_multi_case_coverage(
    case: &MultiFuzzCase,
    injection: Injection,
) -> (CaseReport, CoverageMap) {
    check_multi_case_coverage_full(case, injection, true, true, true, false, true)
}

/// [`check_multi_case_coverage`] with the `--prelink` axis enabled:
/// per-process warm-up snapshots are captured, round-tripped through
/// the `DLSN` format, restored at boot into a prelink multi-oracle and
/// into prelink system runs across the full accel × policy matrix. The
/// extra digests never fold into [`CaseReport::digest_fold`].
pub fn check_multi_case_coverage_prelink(
    case: &MultiFuzzCase,
    injection: Injection,
) -> (CaseReport, CoverageMap) {
    check_multi_case_coverage_full(case, injection, true, true, true, true, true)
}

fn check_multi_case_coverage_full(
    case: &MultiFuzzCase,
    injection: Injection,
    coherence_bus: bool,
    demand_invalidate: bool,
    prelink_validate: bool,
    prelink: bool,
    superblock: bool,
) -> (CaseReport, CoverageMap) {
    let mut failures = Vec::new();
    let mut digest_fold = FNV_OFFSET;
    let mut coverage = CoverageMap::new();
    for &flavor in &FLAVORS {
        let oracle = match run_multi_oracle(case, flavor, None) {
            Ok(o) => o,
            Err(e) => {
                failures.push(format!("[{flavor:?}/oracle] {e}"));
                continue;
            }
        };
        for d in &oracle.digests {
            digest_fold = fold64(digest_fold, d.fold());
        }
        multi_matrix(
            case,
            flavor,
            injection,
            coherence_bus,
            demand_invalidate,
            prelink_validate,
            superblock,
            None,
            &oracle,
            &mut coverage,
            &mut failures,
        );
        if prelink {
            match multi_prelink_arm(
                case,
                flavor,
                injection,
                coherence_bus,
                demand_invalidate,
                prelink_validate,
                superblock,
                &mut coverage,
                &mut failures,
            ) {
                Ok(()) => {}
                Err(e) => failures.push(format!("[{flavor:?}/prelink] {e}")),
            }
        }
    }
    (
        CaseReport {
            seed: case.seed,
            digest_fold,
            failures,
        },
        coverage,
    )
}

/// Runs the accel × policy system matrix for one `(case, flavor)`
/// against `oracle`, appending failures and recording coverage. `boot`
/// selects the prelink round (suffixing labels with `/prelink`).
#[allow(clippy::too_many_arguments)]
fn multi_matrix(
    case: &MultiFuzzCase,
    flavor: TrampolineFlavor,
    injection: Injection,
    coherence_bus: bool,
    demand_invalidate: bool,
    prelink_validate: bool,
    superblock: bool,
    boot: Option<&[ResolutionSnapshot]>,
    oracle: &MultiOracleRun,
    coverage: &mut CoverageMap,
    failures: &mut Vec<String>,
) {
    let suffix = if boot.is_some() { "/prelink" } else { "" };
    for &policy in &POLICIES {
        let mut baseline: Option<PerfCounters> = None;
        for &accel in &ACCELS {
            match run_multi_system(
                case,
                flavor,
                accel,
                policy,
                injection,
                coherence_bus,
                demand_invalidate,
                prelink_validate,
                superblock,
                boot,
            ) {
                Err(e) => {
                    failures.push(format!("[{flavor:?}/{accel:?}/{policy:?}{suffix}] {e}"));
                }
                Ok(run) => {
                    // The prelink round only records its restore
                    // outcomes: run/event coverage would double-count
                    // the lazy matrix's keys.
                    if boot.is_none() {
                        coverage.record_run(accel, policy.into(), &run.counters);
                        coverage.record_multicore_run(
                            accel,
                            policy.into(),
                            case.cores,
                            &run.counters,
                        );
                        for (kind, window) in &run.events {
                            coverage.record_event(accel, policy.into(), *kind, window);
                        }
                    }
                    for outcome in &run.prelink {
                        coverage.record_prelink(accel, policy.into(), outcome);
                    }
                    for (p, (got, want)) in
                        run.digests.iter().zip(oracle.digests.iter()).enumerate()
                    {
                        if got != want {
                            failures.push(format!(
                                "[{flavor:?}/{accel:?}/{policy:?}{suffix}] process {p} architectural divergence: {}",
                                want.describe_diff(got)
                            ));
                        }
                    }
                    for msg in
                        check_multi_counters(flavor, accel, policy, &run, baseline.as_ref(), oracle)
                    {
                        failures.push(format!("[{flavor:?}/{accel:?}/{policy:?}{suffix}] {msg}"));
                    }
                    if accel == LinkAccel::Off {
                        baseline = Some(run.counters);
                    }
                }
            }
        }
    }
}

/// Multi-process prelink round: warm-up capture per process, `DLSN`
/// round-trip, prelink multi-oracle golden run, and the full system
/// matrix restored from the same bytes checked against it.
#[allow(clippy::too_many_arguments)]
fn multi_prelink_arm(
    case: &MultiFuzzCase,
    flavor: TrampolineFlavor,
    injection: Injection,
    coherence_bus: bool,
    demand_invalidate: bool,
    prelink_validate: bool,
    superblock: bool,
    coverage: &mut CoverageMap,
    failures: &mut Vec<String>,
) -> Result<(), String> {
    let all_bytes = warm_multi_snapshot_bytes(case, flavor)?;
    let snapshots = all_bytes
        .iter()
        .enumerate()
        .map(|(p, bytes)| {
            ResolutionSnapshot::decode(bytes)
                .map_err(|e| format!("snapshot round-trip (process {p}): {e}"))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let oracle = run_multi_oracle(case, flavor, Some(&snapshots))?;
    multi_matrix(
        case,
        flavor,
        injection,
        coherence_bus,
        demand_invalidate,
        prelink_validate,
        superblock,
        Some(&snapshots),
        &oracle,
        coverage,
        failures,
    );
    Ok(())
}

/// Multi-process analogue of [`run_difftest`]: checks `cases`
/// consecutive [`MultiFuzzCase`] seeds, sharded over `jobs` workers,
/// optionally shrinking the first failure with
/// [`shrink_multi_case`] (which reduces the schedule *and* the process
/// count). Output is byte-identical at every `--jobs` level.
///
/// `cores` overrides every generated case's core count *after*
/// generation, so the schedules — and therefore the oracle digests —
/// are identical at every `--cores` level; only the system side (and
/// the coverage footer) changes. At `cores <= 1` the report is
/// byte-identical to the historical single-core sweep.
/// `prelink` enables the stable-linking axis (see [`run_difftest`]);
/// the extra runs never fold into the state digest. `superblock = false`
/// runs every system leg on the pure interpreter — the A/B axis behind
/// `difftest --no-superblock`.
#[allow(clippy::too_many_arguments)]
pub fn run_multi_difftest(
    seed_start: u64,
    cases: u64,
    jobs: usize,
    injection: Injection,
    shrink: bool,
    cores: usize,
    demand: bool,
    prelink: bool,
    superblock: bool,
) -> DiffReport {
    let cores = cores.max(1);
    let gen_case = move |seed: u64| {
        let mut case = MultiFuzzCase::generate(seed);
        case.cores = cores;
        if demand {
            case.enable_demand(seed);
        }
        case
    };
    let check = move |case: &MultiFuzzCase| {
        check_multi_case_coverage_full(case, injection, true, true, true, prelink, superblock)
    };
    let cells: Vec<Cell<(CaseReport, CoverageMap)>> = (0..cases)
        .map(|i| {
            let seed = seed_start + i;
            Cell::new(format!("seed{seed}"), move |_ctx| check(&gen_case(seed)))
        })
        .collect();
    let report = ParallelRunner::new(jobs).run(seed_start ^ 0x6d75_6c74, cells);

    let mut output = format!(
        "multi difftest: {cases} case(s), seeds {seed_start}..{}, {{Off,Abtb,AbtbNoBloom}} x {{X86,Arm}} x {{FlushOnSwitch,AsidTagged}}{}{}{}{}\n",
        seed_start + cases,
        if cores > 1 {
            format!(" on {cores} cores")
        } else {
            String::new()
        },
        if demand {
            ", demand-fault events enabled"
        } else {
            ""
        },
        if prelink {
            ", prelink restore enabled"
        } else {
            ""
        },
        match injection {
            Injection::None => "",
            Injection::DropInvalidate => ", injecting stale-ABTB bug",
        }
    );
    let mut digest = FNV_OFFSET;
    let mut coverage = CoverageMap::new();
    let mut failures = 0usize;
    let mut first_failing: Option<u64> = None;
    for cell in report.cells {
        match cell.outcome {
            CellOutcome::Done((r, map)) => {
                digest = fold64(digest, r.digest_fold);
                coverage.merge(&map);
                if !r.failures.is_empty() && first_failing.is_none() {
                    first_failing = Some(r.seed);
                }
                for f in &r.failures {
                    output.push_str(&format!("FAIL seed {}: {f}\n", r.seed));
                    failures += 1;
                }
            }
            CellOutcome::Panicked(msg) => {
                output.push_str(&format!("FAIL {}: panicked: {msg}\n", cell.label));
                failures += 1;
            }
        }
    }

    if let Some(seed) = first_failing.filter(|_| shrink) {
        let case = gen_case(seed);
        let shrunk = shrink_multi_case(&case, |c| !check(c).0.failures.is_empty());
        output.push_str(&format!("shrunk minimal reproducer for seed {seed}:\n"));
        for line in shrunk.to_string().lines() {
            output.push_str(&format!("  {line}\n"));
        }
        for f in check(&shrunk).0.failures {
            output.push_str(&format!("  {f}\n"));
        }
    }

    if cores > 1 {
        output.push_str(&format!(
            "multi difftest: core coverage {} key(s)\n",
            coverage.count_core_facets()
        ));
    }
    if prelink {
        output.push_str(&format!(
            "multi difftest: prelink coverage {} key(s)\n",
            coverage.count_prelink_facets()
        ));
    }
    output.push_str(&format!(
        "multi difftest: {failures} failure(s) across {cases} case(s); coverage {} key(s); state digest {digest:#018x}\n",
        coverage.count()
    ));
    DiffReport {
        output,
        failures,
        cases,
        digest,
        coverage: coverage.count(),
    }
}

// ---------------------------------------------------------------------------
// Fleet-smoke difftest (arena boot path)
// ---------------------------------------------------------------------------

/// Checks one fleet-smoke case: per-process oracle digests on one side,
/// [`MultiProcessSystem::new_fleet`]-booted system runs across the full
/// accel × flavor × §3.3-policy matrix on the other, with every
/// multi-process counter invariant enforced. This folds the arena
/// representation into the per-process digest machinery: a forked
/// tenant sharing its class's `code_uid` and COW pages must be
/// architecturally indistinguishable from the same program booted
/// through the one-process-at-a-time constructor.
pub fn check_fleet_smoke_case(case: &MultiFuzzCase) -> CaseReport {
    let mut failures = Vec::new();
    let mut digest_fold = FNV_OFFSET;
    for &flavor in &FLAVORS {
        let oracle = match run_multi_oracle(case, flavor, None) {
            Ok(o) => o,
            Err(e) => {
                failures.push(format!("[{flavor:?}/oracle] {e}"));
                continue;
            }
        };
        for d in &oracle.digests {
            digest_fold = fold64(digest_fold, d.fold());
        }
        for &policy in &POLICIES {
            let mut baseline: Option<PerfCounters> = None;
            for &accel in &ACCELS {
                match run_fleet_system(case, flavor, accel, policy, Injection::None) {
                    Err(e) => {
                        failures.push(format!("[{flavor:?}/{accel:?}/{policy:?}/fleet] {e}"));
                    }
                    Ok(run) => {
                        for (p, (got, want)) in
                            run.digests.iter().zip(oracle.digests.iter()).enumerate()
                        {
                            if got != want {
                                failures.push(format!(
                                    "[{flavor:?}/{accel:?}/{policy:?}/fleet] tenant {p} architectural divergence: {}",
                                    want.describe_diff(got)
                                ));
                            }
                        }
                        for msg in check_multi_counters(
                            flavor,
                            accel,
                            policy,
                            &run,
                            baseline.as_ref(),
                            &oracle,
                        ) {
                            failures.push(format!("[{flavor:?}/{accel:?}/{policy:?}/fleet] {msg}"));
                        }
                        if accel == LinkAccel::Off {
                            baseline = Some(run.counters);
                        }
                    }
                }
            }
        }
    }
    CaseReport {
        seed: case.seed,
        digest_fold,
        failures,
    }
}

/// The `difftest --fleet-smoke` sweep: `cases` consecutive
/// [`MultiFuzzCase::generate_fleet`] seeds — 8–16 *identical* tenants
/// forked from one class template each, under an ASID-churning
/// switch-storm schedule — sharded over `jobs` workers. Output is
/// byte-identical at every `--jobs` level.
pub fn run_fleet_smoke(seed_start: u64, cases: u64, jobs: usize) -> DiffReport {
    let cells: Vec<Cell<CaseReport>> = (0..cases)
        .map(|i| {
            let seed = seed_start + i;
            Cell::new(format!("seed{seed}"), move |_ctx| {
                check_fleet_smoke_case(&MultiFuzzCase::generate_fleet(seed))
            })
        })
        .collect();
    let report = ParallelRunner::new(jobs).run(seed_start ^ 0x666c_6565, cells);

    let mut output = format!(
        "fleet smoke: {cases} case(s), seeds {seed_start}..{}, 8-16 forked tenants per case, {{Off,Abtb,AbtbNoBloom}} x {{X86,Arm}} x {{FlushOnSwitch,AsidTagged}}\n",
        seed_start + cases,
    );
    let mut digest = FNV_OFFSET;
    let mut failures = 0usize;
    for cell in report.cells {
        match cell.outcome {
            CellOutcome::Done(r) => {
                digest = fold64(digest, r.digest_fold);
                for f in &r.failures {
                    output.push_str(&format!("FAIL seed {}: {f}\n", r.seed));
                    failures += 1;
                }
            }
            CellOutcome::Panicked(msg) => {
                output.push_str(&format!("FAIL {}: panicked: {msg}\n", cell.label));
                failures += 1;
            }
        }
    }
    output.push_str(&format!(
        "fleet smoke: {failures} failure(s) across {cases} case(s); state digest {digest:#018x}\n"
    ));
    DiffReport {
        output,
        failures,
        cases,
        digest,
        coverage: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_cases_produce_no_failures() {
        for seed in 0..15 {
            let report = check_case(&FuzzCase::generate(seed), Injection::None);
            assert!(
                report.failures.is_empty(),
                "seed {seed}: {:?}",
                report.failures
            );
        }
    }

    #[test]
    fn report_counts_match_failure_lines() {
        let r = run_difftest(0, 6, 2, Injection::None, false, false, false, true);
        assert_eq!(r.cases, 6);
        assert_eq!(r.failures, 0, "{}", r.output);
        assert!(r.output.contains("0 failure(s) across 6 case(s)"));
    }

    #[test]
    fn clean_multi_cases_produce_no_failures() {
        for seed in 0..6 {
            let report = check_multi_case(&MultiFuzzCase::generate(seed), Injection::None);
            assert!(
                report.failures.is_empty(),
                "seed {seed}: {:?}",
                report.failures
            );
        }
    }

    #[test]
    fn multi_report_counts_match_failure_lines() {
        let r = run_multi_difftest(0, 4, 2, Injection::None, false, 1, false, false, true);
        assert_eq!(r.cases, 4);
        assert_eq!(r.failures, 0, "{}", r.output);
        assert!(r.output.contains("0 failure(s) across 4 case(s)"));
        assert!(r.output.contains("FlushOnSwitch,AsidTagged"));
        assert!(
            !r.output.contains("core coverage"),
            "single-core reports must stay byte-identical to the historical format"
        );
    }

    #[test]
    fn clean_multi_cases_stay_clean_on_more_cores() {
        for seed in 0..4 {
            for cores in [2, 4] {
                let mut case = MultiFuzzCase::generate(seed);
                case.cores = cores;
                let report = check_multi_case(&case, Injection::None);
                assert!(
                    report.failures.is_empty(),
                    "seed {seed} on {cores} cores: {:?}",
                    report.failures
                );
            }
        }
    }

    #[test]
    fn demand_cases_produce_no_failures() {
        for seed in 0..15 {
            let mut case = FuzzCase::generate(seed);
            case.enable_demand(seed);
            let report = check_case(&case, Injection::None);
            assert!(
                report.failures.is_empty(),
                "seed {seed}: {:?}\n{case}",
                report.failures
            );
        }
    }

    #[test]
    fn demand_multi_cases_produce_no_failures() {
        for seed in 0..6 {
            for cores in [1, 2] {
                let mut case = MultiFuzzCase::generate(seed);
                case.cores = cores;
                case.enable_demand(seed);
                let report = check_multi_case(&case, Injection::None);
                assert!(
                    report.failures.is_empty(),
                    "seed {seed} on {cores} core(s): {:?}\n{case}",
                    report.failures
                );
            }
        }
    }

    #[test]
    fn demand_sweeps_are_clean_and_deterministic() {
        // Both regimes must be clean. Their digests legitimately differ
        // (dlclose/reopen events change architecture: GOT re-arm), but
        // the demand report must be byte-identical at every job level —
        // and the demand-off sweep's digest is the historical one, so
        // the demand flag provably never leaks into generation.
        let eager = run_difftest(0, 20, 2, Injection::None, false, false, false, true);
        let demand = run_difftest(0, 20, 2, Injection::None, false, true, false, true);
        assert_eq!(eager.failures, 0, "{}", eager.output);
        assert_eq!(demand.failures, 0, "{}", demand.output);
        assert!(demand.output.contains("demand-fault events enabled"));
        let demand4 = run_difftest(0, 20, 4, Injection::None, false, true, false, true);
        assert_eq!(demand.output, demand4.output);
    }

    #[test]
    fn prelink_cases_produce_no_failures() {
        for seed in 0..8 {
            let (report, _) =
                check_case_coverage_prelink(&FuzzCase::generate(seed), Injection::None);
            assert!(
                report.failures.is_empty(),
                "seed {seed}: {:?}",
                report.failures
            );
        }
    }

    #[test]
    fn prelink_sweep_is_clean_and_digest_matches_lazy() {
        let lazy = run_difftest(0, 12, 2, Injection::None, false, false, false, true);
        let pre = run_difftest(0, 12, 2, Injection::None, false, false, true, true);
        assert_eq!(pre.failures, 0, "{}", pre.output);
        assert!(
            pre.output.contains("prelink restore enabled"),
            "{}",
            pre.output
        );
        let line = pre
            .output
            .lines()
            .find(|l| l.contains("prelink coverage"))
            .expect("prelink footer line");
        assert!(
            !line.contains("prelink coverage 0 key(s)"),
            "a prelink sweep must exercise at least one restore facet: {line}"
        );
        // Prelink runs are compared pairwise, never folded: the state
        // digest is byte-identical to the lazy sweep's.
        assert_eq!(pre.digest, lazy.digest);
        assert!(
            !lazy.output.contains("prelink coverage"),
            "plain sweeps must stay byte-identical to the historical format"
        );
        let pre4 = run_difftest(0, 12, 4, Injection::None, false, false, true, true);
        assert_eq!(pre.output, pre4.output);
    }

    #[test]
    fn multi_prelink_sweep_is_clean_and_digest_matches_lazy() {
        let lazy = run_multi_difftest(0, 4, 2, Injection::None, false, 2, false, false, true);
        let pre = run_multi_difftest(0, 4, 2, Injection::None, false, 2, false, true, true);
        assert_eq!(pre.failures, 0, "{}", pre.output);
        assert!(
            pre.output.contains("prelink restore enabled"),
            "{}",
            pre.output
        );
        let line = pre
            .output
            .lines()
            .find(|l| l.contains("prelink coverage"))
            .expect("prelink footer line");
        assert!(!line.contains("prelink coverage 0 key(s)"), "{line}");
        assert_eq!(pre.digest, lazy.digest);
    }

    #[test]
    fn prelink_validation_knob_on_matches_plain_check() {
        let case = FuzzCase::generate(3);
        let plain = check_case(&case, Injection::None);
        let knob_on = check_case_with_prelink_validation(&case, Injection::None, true);
        assert_eq!(plain.failures, knob_on.failures);
        assert_eq!(plain.digest_fold, knob_on.digest_fold);
    }

    #[test]
    fn superblock_knobs_on_match_plain_check() {
        let case = FuzzCase::generate(5);
        let plain = check_case(&case, Injection::None);
        let engine_on = check_case_with_superblock(&case, Injection::None, true);
        assert_eq!(plain.failures, engine_on.failures);
        assert_eq!(plain.digest_fold, engine_on.digest_fold);
        let validate_on = check_case_with_superblock_validation(&case, Injection::None, true);
        assert_eq!(plain.failures, validate_on.failures);
        assert_eq!(plain.digest_fold, validate_on.digest_fold);
        // The interpreter leg of the A/B: translation must be
        // architecturally invisible, digest included.
        let engine_off = check_case_with_superblock(&case, Injection::None, false);
        assert!(engine_off.failures.is_empty(), "{:?}", engine_off.failures);
        assert_eq!(plain.digest_fold, engine_off.digest_fold);
    }

    #[test]
    fn demand_invalidation_knob_on_matches_plain_check() {
        let mut case = FuzzCase::generate(1);
        case.enable_demand(1);
        let plain = check_case(&case, Injection::None);
        let knob_on = check_case_with_demand_invalidation(&case, Injection::None, true);
        assert_eq!(plain.failures, knob_on.failures);
        assert_eq!(plain.digest_fold, knob_on.digest_fold);
    }

    #[test]
    fn multicore_report_carries_core_coverage() {
        let r = run_multi_difftest(0, 3, 2, Injection::None, false, 2, false, false, true);
        assert_eq!(r.failures, 0, "{}", r.output);
        assert!(r.output.contains("on 2 cores"), "{}", r.output);
        let line = r
            .output
            .lines()
            .find(|l| l.contains("core coverage"))
            .expect("multicore footer line");
        assert!(
            !line.contains("core coverage 0 key(s)"),
            "a 2-core sweep must exercise at least one core-count facet: {line}"
        );
        // The oracle never sees the core count, so the digest matches
        // the single-core sweep over the same seeds.
        let single = run_multi_difftest(0, 3, 2, Injection::None, false, 1, false, false, true);
        assert_eq!(r.digest, single.digest);
    }
}
