//! A deliberately small JSON reader/writer for the benchmark records.
//!
//! The offline build has no serde, and the only JSON this workspace
//! touches is its own `BENCH_*.json` trajectory files, so a ~150-line
//! recursive-descent parser over a 5-variant [`Value`] is the whole
//! dependency. Objects preserve insertion order (a `Vec` of pairs) so
//! serialized records stay diff-friendly.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; the records' counters fit).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, with key order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Serializes with two-space indentation and a stable field order.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let inner = "  ".repeat(indent + 1);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Number(n) => {
                // Counters serialize as integers; rates keep their
                // fraction. NaN/inf are not representable in JSON.
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&inner);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&inner);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a position-annotated message on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| format!("bad number at byte {start}"))?;
            text.parse::<f64>()
                .map(Value::Number)
                .map_err(|_| format!("bad number `{text}` at byte {start}"))
        }
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chars = std::str::from_utf8(&bytes[*pos..])
        .map_err(|_| "invalid utf-8".to_string())?
        .char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'b')) => out.push('\u{8}'),
                Some((_, 'f')) => out.push('\u{c}'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars
                            .next()
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        code = code * 16
                            + h.to_digit(16).ok_or_else(|| "bad \\u escape".to_string())?;
                    }
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                _ => return Err("bad escape".into()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Value::Array(vec![Value::Object(vec![
            ("name".into(), Value::String("x \"quoted\"\n".into())),
            ("count".into(), Value::Number(42.0)),
            ("rate".into(), Value::Number(1.5)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("empty".into(), Value::Array(vec![])),
        ])]);
        let text = doc.pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Value::Number(1_000_000.0).pretty(), "1000000");
        assert!(Value::Number(2.5).pretty().starts_with("2.5"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1] x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_accepts_escapes_and_unicode() {
        let v = parse("\"a\\u0041\\n\\t\\\\\"").unwrap();
        assert_eq!(v, Value::String("aA\n\t\\".into()));
    }
}
