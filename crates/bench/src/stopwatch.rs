//! Minimal timing harness for the plain-`main` bench binaries.
//!
//! The offline build has no external bench framework, so every
//! `[[bench]]` target is a `harness = false` program: it prints the
//! paper table it regenerates and then times its hot loops with this
//! module. Results are mean wall-clock per iteration — good enough to
//! catch order-of-magnitude regressions, which is all the CI smoke
//! run (`cargo bench --no-run`) and a human eyeballing a run need.

use std::hint::black_box;
use std::time::Instant;

/// A named group of timed loops, printed as an aligned block.
pub struct Stopwatch {
    group: String,
}

impl Stopwatch {
    /// Starts a group; prints its header immediately.
    pub fn group(name: impl Into<String>) -> Self {
        let group = name.into();
        println!("\nbench group `{group}` (mean wall-clock per iteration)");
        Stopwatch { group }
    }

    /// Runs `f` once for warm-up, then `iters` timed iterations, and
    /// prints the mean. The result is passed through
    /// [`std::hint::black_box`] so the loop is not optimised away.
    pub fn bench<T>(&mut self, label: &str, iters: u32, mut f: impl FnMut() -> T) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per = start.elapsed() / iters.max(1);
        println!("  {:<36} {:>12.2?}  ({} iters)", label, per, iters);
    }
}

impl Drop for Stopwatch {
    fn drop(&mut self) {
        println!("bench group `{}` done", self.group);
    }
}
