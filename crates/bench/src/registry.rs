//! The experiment registry: every table/figure driver in one table.
//!
//! `repro`, the benches and the tests all dispatch through this module
//! instead of hand-maintained string matches. Each [`Experiment`] knows
//! its name, a one-line description, whether it needs the shared
//! workload datasets, and how to render its report to the exact text
//! the `repro` binary prints — so output stays byte-identical whether
//! experiments run serially or on a worker pool.

use crate::experiments::{
    btb_pressure, context_switch_sweep, cycle_breakdown, fig4, fig5, fig6, fig7, fig8_table6,
    hw_cost, multitenant, negative_control, sensitivity, table2, table3, table4, table5, Scale,
    WorkloadDataset,
};
use crate::memsave::memory_savings;
use dynlink_workloads::apache;

/// Everything an experiment's render function may consume.
pub struct ExperimentCtx<'a> {
    /// The shared per-workload datasets (empty when no selected
    /// experiment needs them).
    pub datasets: &'a [WorkloadDataset],
    /// Request-count sizing.
    pub scale: Scale,
    /// Prefork worker count for the §5.5 memory-savings model.
    pub workers: u64,
}

impl ExperimentCtx<'_> {
    fn dataset(&self, name: &str) -> Option<&WorkloadDataset> {
        self.datasets.iter().find(|d| d.name == name)
    }
}

/// One registered experiment.
pub struct Experiment {
    /// The `--exp` name.
    pub name: &'static str,
    /// One-line description shown by `repro --list`.
    pub description: &'static str,
    /// Whether the experiment reads the shared workload datasets (and
    /// therefore requires the collection phase).
    pub needs_datasets: bool,
    /// Renders the experiment's full stdout text, trailing newlines
    /// included.
    pub render: fn(&ExperimentCtx<'_>) -> String,
}

/// ABTB capacities swept by the Figure 5 experiment.
pub const FIG5_SIZES: [usize; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

static REGISTRY: &[Experiment] = &[
    Experiment {
        name: "table2",
        description: "Table 2: trampoline instructions per kilo-instruction",
        needs_datasets: true,
        render: |ctx| format!("{}\n", table2(ctx.datasets)),
    },
    Experiment {
        name: "table3",
        description: "Table 3: distinct trampolines exercised",
        needs_datasets: true,
        render: |ctx| {
            format!(
                "{}\n(tail trampolines fire as rarely as every 2^k requests; the quick\n\
                 scale under-counts long tails -- use --scale full for coverage)\n\n",
                table3(ctx.datasets)
            )
        },
    },
    Experiment {
        name: "fig4",
        description: "Figure 4: trampoline rank-frequency series",
        needs_datasets: true,
        render: |ctx| format!("{}\n", fig4(ctx.datasets)),
    },
    Experiment {
        name: "table4",
        description: "Table 4: performance counters, baseline vs enhanced",
        needs_datasets: true,
        render: |ctx| format!("{}\n", table4(ctx.datasets)),
    },
    Experiment {
        name: "fig5",
        description: "Figure 5: % trampolines skipped vs ABTB capacity",
        needs_datasets: true,
        render: |ctx| format!("{}\n", fig5(ctx.datasets, &FIG5_SIZES)),
    },
    Experiment {
        name: "fig6",
        description: "Figure 6: Apache request-latency CDF",
        needs_datasets: true,
        render: |ctx| match ctx.dataset("apache") {
            Some(d) => format!("{}\n", fig6(d)),
            None => String::new(),
        },
    },
    Experiment {
        name: "table5",
        description: "Table 5: Firefox/Peacekeeper scores",
        needs_datasets: true,
        render: |ctx| match ctx.dataset("firefox") {
            Some(d) => format!("{}\n\n", table5(d)),
            None => String::new(),
        },
    },
    Experiment {
        name: "fig7",
        description: "Figure 7: Memcached latency histograms",
        needs_datasets: true,
        render: |ctx| match ctx.dataset("memcached") {
            Some(d) => format!("{}\n", fig7(d, 1000)),
            None => String::new(),
        },
    },
    Experiment {
        name: "fig8",
        description: "Figure 8 / Table 6: MySQL latency distribution",
        needs_datasets: true,
        render: |ctx| match ctx.dataset("mysql") {
            Some(d) => format!("{}\n", fig8_table6(d)),
            None => String::new(),
        },
    },
    Experiment {
        name: "mem",
        description: "Sec 5.5: copy-on-write memory savings in prefork servers",
        needs_datasets: false,
        render: |ctx| format!("{}\n\n", memory_savings(&apache(), ctx.workers)),
    },
    Experiment {
        name: "cost",
        description: "Sec 5.3: on-chip hardware cost of the ABTB + Bloom filter",
        needs_datasets: false,
        render: |_ctx| format!("{}\n\n", hw_cost()),
    },
    Experiment {
        name: "switches",
        description: "Sec 3.3: skip-rate decay under context switches (flush vs ASID)",
        needs_datasets: false,
        render: |ctx| format!("{}\n", context_switch_sweep(ctx.scale.memcached.min(600))),
    },
    Experiment {
        name: "btb",
        description: "Sec 2.2: BTB-entry pressure of dynamic linking",
        needs_datasets: false,
        render: |ctx| format!("{}\n", btb_pressure(ctx.scale)),
    },
    Experiment {
        name: "breakdown",
        description: "Sec 5.2: cycle breakdown, first- vs second-order effects",
        needs_datasets: false,
        render: |ctx| format!("{}\n", cycle_breakdown(ctx.scale)),
    },
    Experiment {
        name: "control",
        description: "Negative control: compute-bound workload is unaffected",
        needs_datasets: false,
        render: |ctx| format!("{}\n\n", negative_control(ctx.scale.memcached.min(400))),
    },
    Experiment {
        name: "sensitivity",
        description: "Machine-parameter sensitivity of the headline speedup",
        needs_datasets: false,
        render: |ctx| format!("{}\n", sensitivity(ctx.scale.apache.min(400))),
    },
    Experiment {
        name: "tenants",
        description: "Two tenants on one core: ASID-tagged vs flushed ABTB",
        needs_datasets: false,
        render: |ctx| format!("{}\n", multitenant(ctx.scale.mysql.min(120), 20_000)),
    },
];

/// All registered experiments, in `repro` print order.
pub fn registry() -> &'static [Experiment] {
    REGISTRY
}

/// Looks up an experiment by exact name.
pub fn find(name: &str) -> Option<&'static Experiment> {
    REGISTRY.iter().find(|e| e.name == name)
}

/// The closest registered name to a mistyped one (by edit distance),
/// for "unknown experiment, did you mean ...?" diagnostics.
pub fn suggest(name: &str) -> &'static str {
    REGISTRY
        .iter()
        .map(|e| (edit_distance(name, e.name), e.name))
        .min_by_key(|&(d, n)| (d, n))
        .map(|(_, n)| n)
        .expect("registry is never empty")
}

/// Classic Levenshtein distance (small inputs; O(len_a * len_b)).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let mut names: Vec<_> = registry().iter().map(|e| e.name).collect();
        assert!(!names.is_empty());
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry().len(), "duplicate experiment name");
        assert!(registry().iter().all(|e| !e.description.is_empty()));
    }

    #[test]
    fn find_hits_every_registered_name() {
        for e in registry() {
            assert_eq!(find(e.name).map(|f| f.name), Some(e.name));
        }
        assert!(find("no-such-experiment").is_none());
    }

    #[test]
    fn suggestion_catches_typos() {
        assert_eq!(suggest("tabel2"), "table2");
        assert_eq!(suggest("fig-5"), "fig5");
        assert_eq!(suggest("memory"), "mem");
        assert_eq!(suggest("sensitivty"), "sensitivity");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn dataset_free_experiments_render_without_collection() {
        let ctx = ExperimentCtx {
            datasets: &[],
            scale: Scale::tiny(),
            workers: 4,
        };
        let cost = find("cost").unwrap();
        assert!(!cost.needs_datasets);
        let text = (cost.render)(&ctx);
        assert!(text.contains("ABTB"), "{text}");
        assert!(text.ends_with("\n\n"));
    }
}
