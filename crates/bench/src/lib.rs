//! # dynlink-bench
//!
//! Experiment drivers regenerating **every table and figure** of the
//! evaluation section of *Architectural Support for Dynamic Linking*
//! (ASPLOS 2015), plus the `repro` binary that prints them and the
//! bench binaries that keep them measurable.
//!
//! Experiment index (see `DESIGN.md` for the full mapping):
//!
//! | Paper artifact | Driver |
//! |---|---|
//! | Table 2 (trampoline PKI) | [`experiments::table2`] |
//! | Table 3 (distinct trampolines) | [`experiments::table3`] |
//! | Figure 4 (rank–frequency) | [`experiments::fig4`] |
//! | Table 4 (performance counters) | [`experiments::table4`] |
//! | Figure 5 (ABTB sizing) | [`experiments::fig5`] |
//! | Figure 6 (Apache latency CDFs) | [`experiments::fig6`] |
//! | Table 5 (Firefox scores) | [`experiments::table5`] |
//! | Figure 7 (Memcached histograms) | [`experiments::fig7`] |
//! | Figure 8 / Table 6 (MySQL latency) | [`experiments::fig8_table6`] |
//! | §5.5 (memory savings) | [`memsave::memory_savings`] |
//! | §5.3 (hardware cost) | [`experiments::hw_cost`] |
//!
//! All of the above are also listed in [`registry::registry`], the
//! single dispatch table consumed by the `repro` binary (`--exp`,
//! `--list`) and the benches. [`runner::ParallelRunner`] shards
//! experiment cells across `--jobs` worker threads with deterministic
//! per-cell seeds and panic isolation.
//!
//! Beyond the paper: [`experiments::btb_pressure`] (§2.2 quantified),
//! [`experiments::cycle_breakdown`] (§5.2 first- vs second-order),
//! [`experiments::context_switch_sweep`] (§3.3 policies),
//! [`experiments::negative_control`] (compute-bound neutrality),
//! [`experiments::sensitivity`] (machine-parameter robustness) and
//! [`experiments::multitenant`] (two processes co-scheduled on one
//! core with ASID-tagged vs flushed ABTBs).
//!
//! Correctness at scale: [`difftest`] (driven by the `difftest`
//! binary) fuzzes random programs and event schedules against the
//! golden `dynlink-oracle` interpreter under every accelerator mode,
//! with fault injection and automatic shrinking — see `docs/TESTING.md`.
//!
//! Simulator speed: [`simspeed`] (driven by the `simspeed` binary)
//! measures host-side simulated-MIPS on representative workloads and
//! appends the trajectory to `BENCH_simspeed.json` — see
//! `docs/PERF.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod difftest;
pub mod experiments;
pub mod fleet;
pub mod guided;
pub mod memsave;
pub mod registry;
pub mod runner;
pub mod simspeed;
pub mod stopwatch;

pub use experiments::{collect, collect_all, collect_all_jobs, Scale, WorkloadDataset};
pub use registry::{registry, Experiment, ExperimentCtx};
pub use runner::{default_jobs, Cell, CellOutcome, ParallelRunner, RunReport};
