//! `simspeed` — host-side simulator-throughput benchmark.
//!
//! ```text
//! simspeed [--budget N] [--reps N] [--label S] [--out PATH] [--no-record] [--no-superblock]
//!          [--only WORKLOAD]
//! simspeed --validate PATH
//! ```
//!
//! Runs the four representative workloads (trampoline-heavy,
//! data-heavy, switch-heavy, switch-heavy-2core — the last on a 2-core
//! machine) for `--budget` simulated instructions
//! each (best of `--reps` timed repetitions, default 3), prints the
//! MIPS table, and appends a machine-readable run record to `--out`
//! (default `BENCH_simspeed.json`). `--no-superblock` times the pure
//! interpreter instead of the superblock translation engine — the
//! engine A/B that quantifies what translation buys. `--validate`
//! skips the benchmark and only checks a file against the
//! `dynlink-simspeed/1` schema — the timing-free mode CI uses. See `docs/PERF.md` for the
//! methodology.

use std::path::PathBuf;
use std::process::ExitCode;

use dynlink_bench::simspeed::{
    append_record, measure_only, render_table, run_mips, validate, RunRecord, WORKLOADS,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: simspeed [--budget N] [--reps N] [--label S] [--out PATH] [--no-record] [--no-superblock]\n\
                         [--only WORKLOAD]\n\
                simspeed --validate PATH"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut budget = 16_000_000u64;
    let mut reps = 3u32;
    let mut label = String::from("dev");
    let mut out = PathBuf::from("BENCH_simspeed.json");
    let mut record = true;
    let mut superblock = true;
    let mut only: Option<String> = None;
    let mut validate_path: Option<PathBuf> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--budget" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(b) if b >= 1 => budget = b,
                    _ => return usage(),
                }
            }
            "--reps" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u32>().ok()) {
                    Some(r) if r >= 1 => reps = r,
                    _ => return usage(),
                }
            }
            "--label" => {
                i += 1;
                match args.get(i) {
                    Some(l) if !l.is_empty() => label = l.clone(),
                    _ => return usage(),
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = PathBuf::from(p),
                    None => return usage(),
                }
            }
            "--no-record" => record = false,
            "--no-superblock" => superblock = false,
            "--only" => {
                i += 1;
                match args.get(i) {
                    Some(w) if WORKLOADS.contains(&w.as_str()) => only = Some(w.clone()),
                    _ => return usage(),
                }
            }
            "--validate" => {
                i += 1;
                match args.get(i) {
                    Some(p) => validate_path = Some(PathBuf::from(p)),
                    None => return usage(),
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
        i += 1;
    }

    if let Some(path) = validate_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("simspeed: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match validate(&text) {
            Ok(runs) => {
                println!(
                    "{}: valid dynlink-simspeed/1 document, {} run(s)",
                    path.display(),
                    runs.len()
                );
                for run in &runs {
                    if let Some(mips) = run_mips(run, "trampoline-heavy") {
                        if mips <= 0.0 {
                            eprintln!("simspeed: non-positive trampoline-heavy MIPS");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("simspeed: {}: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    let run = RunRecord {
        label,
        budget,
        workloads: measure_only(budget, reps, superblock, only.as_deref()),
    };
    print!("{}", render_table(&run));

    if record {
        match append_record(&out, &run) {
            Ok(count) => println!(
                "recorded run {count} as `{}` in {}",
                run.label,
                out.display()
            ),
            Err(e) => {
                eprintln!("simspeed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
