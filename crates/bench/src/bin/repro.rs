//! `repro` — regenerates every table and figure of the paper's
//! evaluation section from the simulator, sharding the experiment
//! matrix across worker threads.
//!
//! ```text
//! repro [--scale quick|full] [--exp all|NAME] [--jobs N] [--workers N]
//!       [--data-dir DIR] [--list]
//! ```
//!
//! Experiments are dispatched through `dynlink_bench::registry()`; run
//! `repro --list` for names and descriptions. Output on stdout is
//! byte-identical at every `--jobs` level (results are printed in
//! registry order); per-phase and per-experiment wall-clock timings go
//! to stderr.

use std::process::ExitCode;
use std::time::Instant;

use dynlink_bench::experiments::{collect_all_jobs, export_figure_data, Scale, WorkloadDataset};
use dynlink_bench::registry::{find, registry, suggest, ExperimentCtx};
use dynlink_bench::runner::{default_jobs, Cell, CellOutcome, ParallelRunner};

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--scale quick|full] [--exp all|NAME] [--jobs N] [--workers N] \
         [--data-dir DIR] [--list]\n       run `repro --list` for experiment names"
    );
    ExitCode::from(2)
}

fn list() -> ExitCode {
    println!("{:<12} description", "name");
    for e in registry() {
        println!("{:<12} {}", e.name, e.description);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut scale = Scale::quick();
    let mut scale_name = "quick";
    let mut exp = "all".to_owned();
    let mut jobs = default_jobs();
    let mut workers = 100u64;
    let mut data_dir: Option<std::path::PathBuf> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("quick") => {
                        scale = Scale::quick();
                        scale_name = "quick";
                    }
                    Some("full") => {
                        scale = Scale::full();
                        scale_name = "full";
                    }
                    _ => return usage(),
                }
            }
            "--exp" => {
                i += 1;
                match args.get(i) {
                    Some(e) if e == "all" || find(e).is_some() => {
                        exp = e.clone();
                    }
                    Some(e) => {
                        eprintln!(
                            "unknown experiment `{e}`; did you mean `{}`? \
                             (run `repro --list` for all names)",
                            suggest(e)
                        );
                        return ExitCode::from(2);
                    }
                    None => return usage(),
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|j| j.parse::<usize>().ok()) {
                    Some(j) if j >= 1 => jobs = j,
                    _ => return usage(),
                }
            }
            "--workers" => {
                i += 1;
                match args.get(i).and_then(|w| w.parse().ok()) {
                    Some(w) => workers = w,
                    None => return usage(),
                }
            }
            "--data-dir" => {
                i += 1;
                match args.get(i) {
                    Some(d) => data_dir = Some(std::path::PathBuf::from(d)),
                    None => return usage(),
                }
            }
            "--list" => return list(),
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
        i += 1;
    }

    let selected: Vec<_> = registry()
        .iter()
        .filter(|e| exp == "all" || exp == e.name)
        .collect();
    let needs_datasets = selected.iter().any(|e| e.needs_datasets) || data_dir.is_some();

    println!(
        "== dynlink-sim reproduction: Architectural Support for Dynamic Linking (ASPLOS'15) =="
    );
    println!("scale: {scale_name}\n");

    let started = Instant::now();
    let datasets: Vec<WorkloadDataset> = if needs_datasets {
        eprintln!(
            "collecting workload datasets (base + enhanced runs, traced) on {jobs} worker(s)..."
        );
        let collected = collect_all_jobs(scale, jobs);
        eprintln!("datasets collected in {:.2?}", started.elapsed());
        collected
    } else {
        Vec::new()
    };

    // Phase 2: render every selected experiment as a runner cell. The
    // registry order is the print order; parallelism only changes who
    // computes what, never what lands on stdout.
    let datasets_ref = &datasets;
    let cells: Vec<Cell<String>> = selected
        .iter()
        .map(|e| {
            let render = e.render;
            Cell::new(e.name, move |_ctx| {
                let ctx = ExperimentCtx {
                    datasets: datasets_ref,
                    scale,
                    workers,
                };
                render(&ctx)
            })
        })
        .collect();
    let report = ParallelRunner::new(jobs).run(0x5eed, cells);

    let mut failed = false;
    for (e, cell) in selected.iter().zip(report.cells) {
        match cell.outcome {
            CellOutcome::Done(text) => print!("{text}"),
            CellOutcome::Panicked(msg) => {
                failed = true;
                eprintln!("experiment `{}` failed: {msg}", e.name);
            }
        }
        eprintln!("experiment {:<12} {:>10.2?}", e.name, cell.wall);
    }
    eprintln!(
        "total wall-clock: {:.2?} ({jobs} job(s))",
        started.elapsed()
    );

    if let Some(dir) = &data_dir {
        match export_figure_data(&datasets, dir) {
            Ok(files) => eprintln!("wrote {} TSV series to {}", files.len(), dir.display()),
            Err(e) => eprintln!("failed to export figure data: {e}"),
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
