//! `repro` — regenerates every table and figure of the paper's
//! evaluation section from the simulator.
//!
//! ```text
//! repro [--scale quick|full] [--exp all|table2|table3|fig4|table4|fig5|
//!        fig6|table5|fig7|fig8|mem|cost] [--workers N]
//! ```

use std::process::ExitCode;

use dynlink_bench::experiments::{
    btb_pressure, collect_all, context_switch_sweep, cycle_breakdown, export_figure_data, fig4,
    fig5, fig6, fig7, fig8_table6, hw_cost, multitenant, negative_control, sensitivity, table2,
    table3, table4, table5, Scale, WorkloadDataset,
};
use dynlink_bench::memsave::memory_savings;
use dynlink_workloads::apache;

const EXPERIMENTS: &[&str] = &[
    "table2",
    "table3",
    "fig4",
    "table4",
    "fig5",
    "fig6",
    "table5",
    "fig7",
    "fig8",
    "mem",
    "cost",
    "switches",
    "btb",
    "breakdown",
    "control",
    "sensitivity",
    "tenants",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--scale quick|full] [--exp all|{}] [--workers N] [--data-dir DIR]",
        EXPERIMENTS.join("|")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut scale = Scale::quick();
    let mut scale_name = "quick";
    let mut exp = "all".to_owned();
    let mut workers = 100u64;
    let mut data_dir: Option<std::path::PathBuf> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("quick") => {
                        scale = Scale::quick();
                        scale_name = "quick";
                    }
                    Some("full") => {
                        scale = Scale::full();
                        scale_name = "full";
                    }
                    _ => return usage(),
                }
            }
            "--exp" => {
                i += 1;
                match args.get(i) {
                    Some(e) if e == "all" || EXPERIMENTS.contains(&e.as_str()) => {
                        exp = e.clone();
                    }
                    _ => return usage(),
                }
            }
            "--workers" => {
                i += 1;
                match args.get(i).and_then(|w| w.parse().ok()) {
                    Some(w) => workers = w,
                    None => return usage(),
                }
            }
            "--data-dir" => {
                i += 1;
                match args.get(i) {
                    Some(d) => data_dir = Some(std::path::PathBuf::from(d)),
                    None => return usage(),
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
        i += 1;
    }

    let want = |name: &str| exp == "all" || exp == name;
    let needs_datasets = EXPERIMENTS[..9].iter().any(|e| want(e));

    println!(
        "== dynlink-sim reproduction: Architectural Support for Dynamic Linking (ASPLOS'15) =="
    );
    println!("scale: {scale_name}\n");

    let datasets: Vec<WorkloadDataset> = if needs_datasets {
        eprintln!("collecting workload datasets (base + enhanced runs, traced)...");
        collect_all(scale)
    } else {
        Vec::new()
    };

    if want("table2") {
        println!("{}", table2(&datasets));
    }
    if want("table3") {
        println!("{}", table3(&datasets));
        println!(
            "(tail trampolines fire as rarely as every 2^k requests; the quick\n\
             scale under-counts long tails -- use --scale full for coverage)\n"
        );
    }
    if want("fig4") {
        println!("{}", fig4(&datasets));
    }
    if want("table4") {
        println!("{}", table4(&datasets));
    }
    if want("fig5") {
        let sizes = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
        println!("{}", fig5(&datasets, &sizes));
    }
    let by_name = |n: &str| datasets.iter().find(|d| d.name == n);
    if want("fig6") {
        if let Some(d) = by_name("apache") {
            println!("{}", fig6(d));
        }
    }
    if want("table5") {
        if let Some(d) = by_name("firefox") {
            println!("{}", table5(d));
            println!();
        }
    }
    if want("fig7") {
        if let Some(d) = by_name("memcached") {
            println!("{}", fig7(d, 1000));
        }
    }
    if want("fig8") {
        if let Some(d) = by_name("mysql") {
            println!("{}", fig8_table6(d));
        }
    }
    if let Some(dir) = &data_dir {
        match export_figure_data(&datasets, dir) {
            Ok(files) => eprintln!("wrote {} TSV series to {}", files.len(), dir.display()),
            Err(e) => eprintln!("failed to export figure data: {e}"),
        }
    }

    if want("mem") {
        println!("{}\n", memory_savings(&apache(), workers));
    }
    if want("cost") {
        println!("{}\n", hw_cost());
    }
    if want("switches") {
        println!("{}", context_switch_sweep(scale.memcached.min(600)));
    }
    if want("btb") {
        println!("{}", btb_pressure(scale));
    }
    if want("breakdown") {
        println!("{}", cycle_breakdown(scale));
    }
    if want("control") {
        println!("{}\n", negative_control(scale.memcached.min(400)));
    }
    if want("sensitivity") {
        println!("{}", sensitivity(scale.apache.min(400)));
    }
    if want("tenants") {
        println!("{}", multitenant(scale.mysql.min(120), 20_000));
    }

    ExitCode::SUCCESS
}
