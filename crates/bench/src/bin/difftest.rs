//! `difftest` — differential fuzzing of the accelerated machine
//! against the golden architectural oracle.
//!
//! ```text
//! difftest [--seed-start N] [--cases N] [--jobs N] [--inject-stale]
//!          [--demand] [--prelink] [--no-superblock] [--no-shrink]
//!          [--multi [--cores N]] [--fleet-smoke]
//!          [--guided [--rounds N] [--round-size N]
//!                    [--corpus DIR] [--save-corpus DIR]]
//! ```
//!
//! Every case is generated from its seed (`seed_start + index`), run
//! through the `dynlink-oracle` interpreter and through the full
//! `System` under `{Off, Abtb, AbtbNoBloom} x {X86, Arm}`, and checked
//! for architectural divergence and counter-invariant violations.
//! `--multi` switches to multi-process cases (paper §3.3): 2–4
//! processes with context switches, ASID-aliasing layouts and an
//! optional shared-GOT pair, each checked additionally across
//! `{FlushOnSwitch, AsidTagged}` switch policies. `--cores N` runs the
//! system side of each multi case on an N-core machine (processes
//! pinned round-robin, GOT stores snooping remote Bloom filters over
//! the coherence bus); the oracle is architectural, so the state
//! digest is identical at every `--cores` level. `--demand` turns
//! every generated case into a demand-paging case *after* generation
//! (lazy code pages fault in on first fetch; evict/dlclose/reopen
//! events join the schedule), so the demand-off digests are untouched.
//! `--prelink` enables the stable-linking axis: each case additionally
//! captures a warm-up resolution snapshot, round-trips it through the
//! versioned `DLSN` format, and checks boot-restored system runs
//! against a boot-restored oracle; the extra runs are compared
//! pairwise and never folded into the state digest, so `--prelink`
//! reports the same digest as the plain sweep.
//! `--no-superblock` forces every system run onto the pure interpreter
//! (no superblock translation). Translation is architecturally
//! invisible, so the digest must be byte-identical with and without the
//! flag — running the same sweep both ways is the scriptable A/B check
//! CI's engine-equality shard performs.
//! `--fleet-smoke` switches to tiny-fleet cases: 8–16 *identical*
//! tenant processes booted through the arena/fork path
//! (`MultiProcessSystem::new_fleet` — one class template, shared
//! `code_uid`, COW pages) under an ASID-churning switch storm, each
//! checked against per-process oracle digests across the full accel ×
//! flavor × switch-policy matrix. This difftests the representation
//! the `fleet` bench scales to thousands of tenants.
//! `--guided` switches to coverage-guided mutational fuzzing:
//! `--rounds` rounds of `--round-size` candidates, keeping
//! behavioral-coverage-novel cases as mutation parents; `--corpus DIR`
//! seeds from checked-in reproducers, `--save-corpus DIR` persists
//! minimized novel cases in the same reproducer format.
//! Stdout is byte-identical at every `--jobs` level; exit status is
//! non-zero when any case fails. `--inject-stale` enables the
//! intentional stale-ABTB bug (raw GOT rewrites that bypass the store
//! path and skip the §3.4 invalidate) to prove the harness catches and
//! shrinks real divergences. See `docs/TESTING.md` for the workflow.

use std::process::ExitCode;
use std::time::Instant;

use dynlink_bench::difftest::{run_difftest, run_fleet_smoke, run_multi_difftest, Injection};
use dynlink_bench::guided::{run_guided, GuidedConfig};
use dynlink_bench::runner::default_jobs;

fn usage() -> ExitCode {
    eprintln!(
        "usage: difftest [--seed-start N] [--cases N] [--jobs N] [--inject-stale] [--demand] [--prelink] [--no-superblock] [--no-shrink] [--multi [--cores N]] [--fleet-smoke]\n\
         \x20               [--guided [--rounds N] [--round-size N] [--corpus DIR] [--save-corpus DIR]]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut seed_start = 0u64;
    let mut cases = 500u64;
    let mut jobs = default_jobs();
    let mut injection = Injection::None;
    let mut shrink = true;
    let mut multi = false;
    let mut fleet_smoke = false;
    let mut cores = 1usize;
    let mut demand = false;
    let mut prelink = false;
    let mut superblock = true;
    let mut guided = false;
    let mut rounds = 8u64;
    let mut round_size = 64u64;
    let mut corpus_dir: Option<std::path::PathBuf> = None;
    let mut save_dir: Option<std::path::PathBuf> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed-start" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(s) => seed_start = s,
                    None => return usage(),
                }
            }
            "--cases" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(c) if c >= 1 => cases = c,
                    _ => return usage(),
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(j) if j >= 1 => jobs = j,
                    _ => return usage(),
                }
            }
            "--rounds" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(r) if r >= 1 => rounds = r,
                    _ => return usage(),
                }
            }
            "--round-size" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(r) if r >= 1 => round_size = r,
                    _ => return usage(),
                }
            }
            "--corpus" => {
                i += 1;
                match args.get(i) {
                    Some(d) => corpus_dir = Some(d.into()),
                    None => return usage(),
                }
            }
            "--save-corpus" => {
                i += 1;
                match args.get(i) {
                    Some(d) => save_dir = Some(d.into()),
                    None => return usage(),
                }
            }
            "--cores" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(c) if (1..=8).contains(&c) => cores = c,
                    _ => return usage(),
                }
            }
            "--inject-stale" => injection = Injection::DropInvalidate,
            "--demand" => demand = true,
            "--prelink" => prelink = true,
            "--no-superblock" => superblock = false,
            "--no-shrink" => shrink = false,
            "--multi" => multi = true,
            "--fleet-smoke" => fleet_smoke = true,
            "--guided" => guided = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
        i += 1;
    }
    if guided && demand {
        eprintln!("difftest: --guided reaches demand cases through mutation; drop --demand");
        return usage();
    }
    if guided && prelink {
        eprintln!("difftest: --guided reaches prelink events through mutation; drop --prelink");
        return usage();
    }
    if guided && !superblock {
        eprintln!(
            "difftest: --guided always runs with superblock translation; drop --no-superblock"
        );
        return usage();
    }
    if guided && multi {
        eprintln!(
            "difftest: --guided is single-process; combine coverage from --multi runs instead"
        );
        return usage();
    }
    if fleet_smoke && (multi || guided || demand || prelink || !superblock) {
        eprintln!("difftest: --fleet-smoke is its own mode; drop the other mode flags");
        return usage();
    }
    if cores > 1 && !multi {
        eprintln!("difftest: --cores applies to multi-process cases; add --multi");
        return usage();
    }

    let started = Instant::now();
    let report = if guided {
        run_guided(&GuidedConfig {
            seed_start,
            rounds,
            round_size,
            jobs,
            injection,
            shrink,
            corpus_dir,
            save_dir,
        })
    } else if fleet_smoke {
        run_fleet_smoke(seed_start, cases, jobs)
    } else if multi {
        run_multi_difftest(
            seed_start, cases, jobs, injection, shrink, cores, demand, prelink, superblock,
        )
    } else {
        run_difftest(
            seed_start, cases, jobs, injection, shrink, demand, prelink, superblock,
        )
    };
    print!("{}", report.output);
    eprintln!(
        "total wall-clock: {:.2?} ({jobs} job(s))",
        started.elapsed()
    );

    if report.failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
