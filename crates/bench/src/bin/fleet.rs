//! `fleet` — fleet-scale tenant engine with tail-latency CDFs.
//!
//! ```text
//! fleet [--tenants N] [--requests N] [--seed N] [--closed-loop] [--arrival N]
//!       [--churn N] [--jobs N] [--label S] [--out PATH] [--no-record]
//! fleet --validate PATH
//! ```
//!
//! Boots `--tenants` processes (forked from one class template, so
//! thousands are affordable), drives them with seeded open-loop
//! request traffic (`--closed-loop` switches to think-time traffic),
//! performs a live `libv1 → libv2` upgrade on every tenant halfway
//! through plus `dlclose`/`dlreopen` churn every `--churn` requests,
//! and prints per-request latency percentiles (simulated cycles) for
//! each cell of the `{Off, Abtb, AbtbNoBloom} × {FlushOnSwitch,
//! AsidTagged}` policy matrix. A machine-readable run record is
//! appended to `--out` (default `BENCH_fleet.json`). Output is
//! byte-identical at any `--jobs` level and across reruns at the same
//! seed. `--validate` only checks a file against the `dynlink-fleet/1`
//! schema — the timing-free mode CI uses. See `EXPERIMENTS.md` for the
//! methodology.

use std::path::PathBuf;
use std::process::ExitCode;

use dynlink_bench::fleet::{append_record, render_table, run_fleet, validate, FleetParams};
use dynlink_bench::runner::default_jobs;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fleet [--tenants N] [--requests N] [--seed N] [--closed-loop] [--arrival N]\n\
                      [--churn N] [--jobs N] [--label S] [--out PATH] [--no-record]\n\
                fleet --validate PATH"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut params = FleetParams::default();
    let mut jobs = default_jobs();
    let mut label = String::from("dev");
    let mut out = PathBuf::from("BENCH_fleet.json");
    let mut record = true;
    let mut validate_path: Option<PathBuf> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tenants" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(t) if t >= 1 => params.tenants = t,
                    _ => return usage(),
                }
            }
            "--requests" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(r) if r >= 1 => params.requests = r,
                    _ => return usage(),
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(s) => params.seed = s,
                    _ => return usage(),
                }
            }
            "--closed-loop" => params.closed_loop = true,
            "--arrival" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(a) if a >= 1 => params.arrival_mean = a,
                    _ => return usage(),
                }
            }
            "--churn" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(c) => params.churn_period = c,
                    _ => return usage(),
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(j) if j >= 1 => jobs = j,
                    _ => return usage(),
                }
            }
            "--label" => {
                i += 1;
                match args.get(i) {
                    Some(l) if !l.is_empty() => label = l.clone(),
                    _ => return usage(),
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = PathBuf::from(p),
                    None => return usage(),
                }
            }
            "--no-record" => record = false,
            "--validate" => {
                i += 1;
                match args.get(i) {
                    Some(p) => validate_path = Some(PathBuf::from(p)),
                    None => return usage(),
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
        i += 1;
    }

    if let Some(path) = validate_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fleet: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match validate(&text) {
            Ok(runs) => {
                println!(
                    "{}: valid dynlink-fleet/1 document, {} run(s)",
                    path.display(),
                    runs.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("fleet: {}: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    let run = match run_fleet(&params, &label, jobs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", render_table(&run));
    let upgrades: u64 = run.cells.iter().map(|c| c.upgrades).sum();
    println!(
        "upgrades {} across {} cells; anomalies {}",
        upgrades,
        run.cells.len(),
        run.cells.iter().map(|c| c.version_anomalies).sum::<u64>()
    );

    if record {
        match append_record(&out, &run) {
            Ok(count) => println!(
                "recorded run {count} as `{}` in {}",
                run.label,
                out.display()
            ),
            Err(e) => {
                eprintln!("fleet: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
