//! §5.5 memory-savings experiment: call-site patching vs the hardware.
//!
//! The paper argues the software emulation (patching call sites) breaks
//! copy-on-write sharing in prefork servers: every patched code page in
//! every forked worker becomes a private copy (~280 pages ≈ 1.1 MB per
//! Apache process, ~0.5 GB for a busy server), while the hardware
//! mechanism leaves code pages untouched and shared. This module
//! reproduces the accounting with the simulated Apache image.

use std::fmt;

use dynlink_core::SystemBuilder;
use dynlink_linker::{apply_call_site_patches, LinkMode, LinkOptions, Loader};
use dynlink_mem::layout::LibraryPlacement;
use dynlink_mem::{AddressSpace, Perms, PAGE_BYTES};
use dynlink_workloads::{generate, WorkloadProfile};

/// Result of the §5.5 experiment.
#[derive(Debug, Clone)]
pub struct MemorySavings {
    /// Workload name.
    pub workload: String,
    /// Library-call sites patched per process.
    pub patch_sites: u64,
    /// Private page copies forced in each forked worker by post-fork
    /// patching (the software approach with lazy, per-process patching).
    pub pages_copied_per_worker: u64,
    /// Number of forked workers simulated.
    pub workers: u64,
    /// Private page copies when patching happens once, before forking
    /// (requires abandoning lazy resolution, §2.3).
    pub pages_copied_patch_before_fork: u64,
    /// Private page copies under the proposed hardware (no patching).
    pub pages_copied_hardware: u64,
    /// Code pages the image maps in total (eager load maps all of them
    /// up front; this is the denominator for the residency ratio).
    pub code_pages_total: u64,
    /// Code pages actually resident after one demand-paged run of the
    /// workload: lazy loading leaves library code not-present and only
    /// fetch faults map it in.
    pub code_pages_demand_resident: u64,
    /// Fetch faults (fault-ins) the demand-paged run took to reach that
    /// residency.
    pub demand_faults_in: u64,
}

impl MemorySavings {
    /// Bytes wasted per worker by post-fork patching.
    pub fn bytes_per_worker(&self) -> u64 {
        self.pages_copied_per_worker * PAGE_BYTES
    }

    /// Total bytes wasted across all workers by post-fork patching.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_worker() * self.workers
    }
}

impl fmt::Display for MemorySavings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Section 5.5. Memory overhead of software call-site patching ({})",
            self.workload
        )?;
        writeln!(f, "  call sites patched per process : {}", self.patch_sites)?;
        writeln!(
            f,
            "  post-fork patching  : {} pages ({:.1} KB) copied per worker; {:.1} MB for {} workers",
            self.pages_copied_per_worker,
            self.bytes_per_worker() as f64 / 1024.0,
            self.total_bytes() as f64 / (1024.0 * 1024.0),
            self.workers
        )?;
        writeln!(
            f,
            "  pre-fork patching   : {} extra pages copied (COW preserved, but lazy resolution lost)",
            self.pages_copied_patch_before_fork
        )?;
        writeln!(
            f,
            "  proposed hardware   : {} pages copied (code pages stay shared)",
            self.pages_copied_hardware
        )?;
        write!(
            f,
            "  demand paging       : {}/{} code pages resident after one run ({} fault-ins)",
            self.code_pages_demand_resident, self.code_pages_total, self.demand_faults_in
        )
    }
}

/// Runs the §5.5 experiment: loads the workload image eagerly, forks
/// `workers` children and patches each child's call sites, counting the
/// COW page copies, then compares with patch-before-fork and with the
/// hardware (no patching at all).
///
/// # Panics
///
/// Panics if the image fails to load or patch — the generated workloads
/// are expected to be loadable.
pub fn memory_savings(profile: &WorkloadProfile, workers: u64) -> MemorySavings {
    let workload = generate(profile, 64, 1);
    let opts = LinkOptions {
        mode: LinkMode::DynamicNow,
        placement: LibraryPlacement::Near,
        ..LinkOptions::default()
    };
    let mut space = AddressSpace::new(1);
    let image = Loader::new(opts)
        .load(&workload.modules, "main", &mut space)
        .expect("workload image loads");
    // The paper's modified linker makes text writable (§4.3).
    for m in image.modules() {
        space
            .protect(m.text_base, m.text_len.max(1), Perms::RWX)
            .expect("text is mapped");
    }

    // Post-fork patching: every worker pays its own page copies.
    let mut patch_sites = 0;
    let mut pages_copied_per_worker = 0;
    for w in 0..workers.min(4) {
        // Page-copy counts are identical across workers; simulate a few
        // and reuse the per-worker number.
        let mut child = space.fork(10 + w);
        patch_sites = apply_call_site_patches(&image, &mut child).expect("patching succeeds");
        pages_copied_per_worker = child.stats().cow_copies;
    }

    // Pre-fork patching: the parent patches once, children share.
    let mut parent2 = space.clone();
    apply_call_site_patches(&image, &mut parent2).expect("patching succeeds");
    let child2 = parent2.fork(99);
    let pages_copied_patch_before_fork = child2.stats().cow_copies;

    // Hardware: no patching; forked children copy nothing.
    let child3 = space.fork(100);
    let pages_copied_hardware = child3.stats().cow_copies;

    // Demand paging: load the same workload lazily with code pages
    // absent, run it once, and count how much library code the run
    // actually touched. Residency is the companion metric to the COW
    // numbers above: eager loading maps every code page; demand loading
    // only maps what executes.
    let mut sys = SystemBuilder::new()
        .modules(workload.modules.clone())
        .link_mode(LinkMode::DynamicLazy)
        .demand_paging(true)
        .build()
        .expect("demand-paged workload builds");
    sys.run(2_000_000).expect("demand-paged workload runs");
    let demand_space = sys.machine().space();
    let code_pages_demand_resident = demand_space.resident_code_pages();
    let code_pages_total = code_pages_demand_resident + demand_space.not_present_code_pages();
    let demand_faults_in = sys.counters().demand_faults_in;

    MemorySavings {
        workload: profile.name.clone(),
        patch_sites,
        pages_copied_per_worker,
        workers,
        pages_copied_patch_before_fork,
        pages_copied_hardware,
        code_pages_total,
        code_pages_demand_resident,
        demand_faults_in,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynlink_workloads::apache;

    #[test]
    fn software_patching_copies_pages_hardware_does_not() {
        let ms = memory_savings(&apache(), 100);
        assert!(ms.patch_sites > 100, "apache has many call sites");
        assert!(
            ms.pages_copied_per_worker > 0,
            "post-fork patching must copy code pages"
        );
        assert_eq!(ms.pages_copied_hardware, 0);
        assert_eq!(ms.pages_copied_patch_before_fork, 0);
        assert_eq!(
            ms.total_bytes(),
            ms.pages_copied_per_worker * PAGE_BYTES * 100
        );
        let text = ms.to_string();
        assert!(text.contains("Section 5.5"));
        assert!(text.contains("proposed hardware"));
        assert!(text.contains("code pages resident"));
    }

    #[test]
    fn demand_paging_leaves_cold_code_not_present() {
        let ms = memory_savings(&apache(), 10);
        assert!(ms.code_pages_total > 0, "image has code pages");
        assert!(
            ms.code_pages_demand_resident <= ms.code_pages_total,
            "resident pages are a subset of the image"
        );
        assert!(
            ms.demand_faults_in > 0,
            "a lazy run must fault library code in"
        );
        // The loader only evicts library code behind the main module's
        // text, so a run that does not touch every library page keeps
        // part of the image not-present.
        assert!(
            ms.code_pages_demand_resident < ms.code_pages_total,
            "some library code must stay cold: {}/{}",
            ms.code_pages_demand_resident,
            ms.code_pages_total
        );
    }
}
