//! Sim-speed (simulated-MIPS) benchmark: how fast does the *simulator*
//! run, in millions of simulated instructions per host second?
//!
//! Everything else in this crate measures the *simulated* machine
//! (cycles, misses, trampolines). This module measures the simulator
//! itself, because wall-clock throughput is what bounds difftest depth,
//! fuzz case counts and experiment sweeps. Three representative
//! workloads cover the hot paths:
//!
//! * **trampoline-heavy** — the paper's §2 shape: a tight library-call
//!   loop through a PLT trampoline and a GOT load, on the baseline
//!   machine so every trampoline executes. Stresses instruction
//!   dispatch and the memory-indirect jump path.
//! * **data-heavy** — a load/store sweep over a 64 KiB buffer.
//!   Stresses the `AddressSpace` data fast paths.
//! * **switch-heavy** — two processes running the trampoline loop,
//!   swapped every 64 instructions. Stresses `swap_process` and
//!   decode-cache retention across context switches.
//! * **switch-heavy-2core** — the same two processes, each pinned to
//!   its own core of a 2-core machine and swapped at the same cadence.
//!   Stresses the multi-core dispatch path (per-core state custody plus
//!   the coherence-bus drain after every instruction).
//!
//! Results are appended to `BENCH_simspeed.json` (a JSON array of run
//! records, schema `dynlink-simspeed/1`) so the performance trajectory
//! is tracked in-repo across PRs. Wall-clock numbers are only
//! meaningful on the machine that produced them; CI therefore runs the
//! benchmark with a tiny budget and validates the schema, never a
//! timing threshold — see `docs/PERF.md`.

use std::time::Instant;

use dynlink_cpu::{Machine, MachineBuilder, MachineConfig, ProcessContext};
use dynlink_isa::{Cond, Inst, MemRef, Operand, Reg, VirtAddr};
use dynlink_mem::{AddressSpace, Perms};

pub mod json;

const TEXT: u64 = 0x40_0000;
const PLT: u64 = 0x41_0000;
const GOT: u64 = 0x60_0000;
const FUNC: u64 = 0x7f_0000;
const BUF: u64 = 0x80_0000;
const STACK_TOP: u64 = 0x100_0000;

/// The schema tag written into every run record.
pub const SCHEMA: &str = "dynlink-simspeed/1";

/// One timed workload result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload name (stable identifier, e.g. `trampoline-heavy`).
    pub name: &'static str,
    /// Simulated instructions retired during the timed run.
    pub instructions: u64,
    /// Host wall-clock nanoseconds for the timed run.
    pub nanos: u128,
}

impl Measurement {
    /// Millions of simulated instructions per host second.
    pub fn mips(&self) -> f64 {
        if self.nanos == 0 {
            return 0.0;
        }
        self.instructions as f64 * 1e3 / self.nanos as f64
    }
}

/// A complete benchmark run: one measurement per workload.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Free-form label distinguishing the code state measured (e.g.
    /// `pr4-baseline`, `pr4-predecoded`).
    pub label: String,
    /// Instruction budget each workload executed.
    pub budget: u64,
    /// Per-workload measurements.
    pub workloads: Vec<Measurement>,
}

/// Stable list of workload names, in report order.
pub const WORKLOADS: [&str; 4] = [
    "trampoline-heavy",
    "data-heavy",
    "switch-heavy",
    "switch-heavy-2core",
];

/// The measured machine configuration: baseline hardware, with the
/// superblock translation engine switched per the benchmark's engine
/// axis (`simspeed --no-superblock` times the pure interpreter, the
/// A/B that quantifies what translation buys).
fn config(superblock: bool) -> MachineConfig {
    MachineConfig {
        superblock,
        ..MachineConfig::baseline()
    }
}

fn place(s: &mut AddressSpace, at: VirtAddr, insts: &[Inst]) {
    let mut cursor = at;
    for &i in insts {
        s.place_code(cursor, i)
            .expect("benchmark program placement");
        cursor += i.encoded_len();
    }
}

/// Builds the canonical dynamic-linking loop (call → PLT trampoline →
/// GOT load → library function → return) in `s`, iterating practically
/// forever so runs are bounded by the instruction budget alone.
fn build_trampoline_program(s: &mut AddressSpace) {
    s.map_code_region(VirtAddr::new(TEXT), 0x1000, Perms::RX)
        .unwrap();
    s.map_code_region(VirtAddr::new(PLT), 0x1000, Perms::RX)
        .unwrap();
    s.map_region(VirtAddr::new(GOT), 0x1000, Perms::RW).unwrap();
    s.map_code_region(VirtAddr::new(FUNC), 0x1000, Perms::RX)
        .unwrap();
    let plt0 = VirtAddr::new(PLT);
    let got0 = VirtAddr::new(GOT + 16);
    let func = VirtAddr::new(FUNC);
    let i0 = Inst::mov_imm(Reg::R2, u64::MAX);
    let loop_pc = VirtAddr::new(TEXT) + i0.encoded_len();
    place(
        s,
        VirtAddr::new(TEXT),
        &[
            i0,
            Inst::CallDirect { target: plt0 },
            Inst::sub_imm(Reg::R2, 1),
            Inst::BranchCond {
                cond: Cond::Ne,
                lhs: Reg::R2,
                rhs: Operand::Imm(0),
                target: loop_pc,
            },
            Inst::Halt,
        ],
    );
    place(
        s,
        plt0,
        &[Inst::JmpIndirectMem {
            mem: MemRef::Abs(got0),
        }],
    );
    s.write_u64(got0, func.as_u64()).unwrap();
    place(s, func, &[Inst::add_imm(Reg::R0, 1), Inst::Ret]);
}

fn trampoline_machine(asid: u64, superblock: bool) -> Machine {
    let mut s = AddressSpace::new(asid);
    build_trampoline_program(&mut s);
    let mut m = Machine::new(config(superblock), s);
    m.init_stack(VirtAddr::new(STACK_TOP), 0x10000).unwrap();
    m.set_plt_ranges(&[(VirtAddr::new(PLT), VirtAddr::new(PLT + 0x1000))]);
    m.reset(VirtAddr::new(TEXT));
    m
}

fn run_trampoline_heavy(budget: u64, superblock: bool) -> u64 {
    let mut m = trampoline_machine(1, superblock);
    m.run(budget).expect("trampoline workload");
    m.counters().instructions
}

/// A load/store sweep: two stores and two loads per iteration walking a
/// 64 KiB buffer with wraparound, exercising the single-page data fast
/// paths (the §2 GOT-slot access pattern, scaled up).
fn run_data_heavy(budget: u64, superblock: bool) -> u64 {
    let mut s = AddressSpace::new(1);
    s.map_code_region(VirtAddr::new(TEXT), 0x1000, Perms::RX)
        .unwrap();
    s.map_region(VirtAddr::new(BUF), 0x10000, Perms::RW)
        .unwrap();
    let i0 = Inst::mov_imm(Reg::R1, BUF);
    let i1 = Inst::mov_imm(Reg::R5, 0);
    let i2 = Inst::mov_imm(Reg::R2, u64::MAX);
    let loop_pc = VirtAddr::new(TEXT) + i0.encoded_len() + i1.encoded_len() + i2.encoded_len();
    let slot = |disp: i64| MemRef::BaseIndexDisp {
        base: Reg::R1,
        index: Reg::R5,
        scale: 1,
        disp,
    };
    place(
        &mut s,
        VirtAddr::new(TEXT),
        &[
            i0,
            i1,
            i2,
            Inst::Store {
                src: Reg::R0,
                mem: slot(0),
            },
            Inst::Store {
                src: Reg::R2,
                mem: slot(8),
            },
            Inst::Load {
                dst: Reg::R3,
                mem: slot(0),
            },
            Inst::Load {
                dst: Reg::R4,
                mem: slot(8),
            },
            Inst::add_imm(Reg::R5, 16),
            Inst::Alu {
                op: dynlink_isa::AluOp::And,
                dst: Reg::R5,
                src: Operand::Imm(0xFFF0),
            },
            Inst::sub_imm(Reg::R2, 1),
            Inst::BranchCond {
                cond: Cond::Ne,
                lhs: Reg::R2,
                rhs: Operand::Imm(0),
                target: loop_pc,
            },
            Inst::Halt,
        ],
    );
    let mut m = Machine::new(config(superblock), s);
    m.init_stack(VirtAddr::new(STACK_TOP), 0x10000).unwrap();
    m.reset(VirtAddr::new(TEXT));
    m.run(budget).expect("data workload");
    m.counters().instructions
}

/// Two trampoline-loop processes multiplexed on one machine, swapped
/// every 64 instructions: the §3.3 context-switch shape, dominated by
/// `swap_process` cost when timeslices are this short.
fn run_switch_heavy(budget: u64, superblock: bool) -> u64 {
    const SLICE: u64 = 64;
    let mut m = Machine::new(config(superblock), AddressSpace::new(0));
    m.set_plt_ranges(&[(VirtAddr::new(PLT), VirtAddr::new(PLT + 0x1000))]);
    let mut procs: Vec<ProcessContext> = (1..=2)
        .map(|asid| {
            let mut s = AddressSpace::new(asid);
            build_trampoline_program(&mut s);
            ProcessContext::new(s, VirtAddr::new(TEXT), VirtAddr::new(STACK_TOP), 0x10000).unwrap()
        })
        .collect();
    let mut current = 0usize;
    m.swap_process(&mut procs[current]);
    while m.counters().instructions < budget {
        let left = budget - m.counters().instructions;
        m.run(SLICE.min(left)).expect("switch workload");
        m.swap_process(&mut procs[current]);
        current ^= 1;
        m.swap_process(&mut procs[current]);
    }
    m.counters().instructions
}

/// The switch-heavy shape on a 2-core machine: process `p` is pinned to
/// core `p`, the active core alternates every 64 instructions, and the
/// suspended core keeps its warm microarchitectural state while
/// snooping the coherence bus — the multi-core dispatch overhead the
/// `--cores` difftest axis pays on every instruction.
fn run_switch_heavy_2core(budget: u64, superblock: bool) -> u64 {
    const SLICE: u64 = 64;
    let mut m = MachineBuilder::new(config(superblock))
        .cores(2)
        .build(AddressSpace::new(0));
    m.set_plt_ranges(&[(VirtAddr::new(PLT), VirtAddr::new(PLT + 0x1000))]);
    let mut procs: Vec<ProcessContext> = (1..=2)
        .map(|asid| {
            let mut s = AddressSpace::new(asid);
            build_trampoline_program(&mut s);
            ProcessContext::new(s, VirtAddr::new(TEXT), VirtAddr::new(STACK_TOP), 0x10000).unwrap()
        })
        .collect();
    let mut current = 0usize;
    m.swap_space_with(procs[current].space_mut());
    m.load_thread(current, &procs[current]);
    m.set_active_core(current);
    while m.counters().instructions < budget {
        let left = budget - m.counters().instructions;
        m.run(SLICE.min(left)).expect("2-core switch workload");
        m.park_thread(current, &mut procs[current]);
        m.swap_space_with(procs[current].space_mut());
        current ^= 1;
        m.swap_space_with(procs[current].space_mut());
        m.load_thread(current, &procs[current]);
        m.set_active_core(current);
    }
    m.counters().instructions
}

fn run_workload(name: &str, budget: u64, superblock: bool) -> u64 {
    match name {
        "trampoline-heavy" => run_trampoline_heavy(budget, superblock),
        "data-heavy" => run_data_heavy(budget, superblock),
        "switch-heavy" => run_switch_heavy(budget, superblock),
        "switch-heavy-2core" => run_switch_heavy_2core(budget, superblock),
        other => panic!("unknown simspeed workload `{other}`"),
    }
}

/// Runs every workload for `budget` simulated instructions (after an
/// untimed warmup at one eighth of the budget) and returns the timed
/// measurements, in [`WORKLOADS`] order.
///
/// Each workload is timed `reps` times and the *fastest* repetition is
/// kept. The workloads are deterministic, so host scheduler preemption
/// can only add time, never remove it — the minimum is the least-noisy
/// estimate of true simulator cost on a shared machine (see
/// `docs/PERF.md`).
pub fn measure_all(budget: u64, reps: u32, superblock: bool) -> Vec<Measurement> {
    measure_only(budget, reps, superblock, None)
}

/// [`measure_all`] restricted to the workloads whose name passes
/// `filter` (`None` keeps all four). Used by `simspeed --only` to time
/// or profile a single workload without the others diluting the run.
pub fn measure_only(
    budget: u64,
    reps: u32,
    superblock: bool,
    filter: Option<&str>,
) -> Vec<Measurement> {
    let reps = reps.max(1);
    WORKLOADS
        .iter()
        .filter(|&&name| filter.is_none_or(|f| f == name))
        .map(|&name| {
            run_workload(name, (budget / 8).max(1), superblock);
            (0..reps)
                .map(|_| {
                    let start = Instant::now();
                    let instructions = run_workload(name, budget, superblock);
                    let nanos = start.elapsed().as_nanos();
                    Measurement {
                        name: match name {
                            "trampoline-heavy" => "trampoline-heavy",
                            "data-heavy" => "data-heavy",
                            "switch-heavy-2core" => "switch-heavy-2core",
                            _ => "switch-heavy",
                        },
                        instructions,
                        nanos,
                    }
                })
                .min_by_key(|m| m.nanos)
                .expect("at least one repetition")
        })
        .collect()
}

/// Renders the fixed-layout result table. Workload order and the
/// instruction column are deterministic; the timing columns are
/// host-dependent by nature.
pub fn render_table(record: &RunRecord) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "sim-speed `{}` (budget {} instructions per workload)\n",
        record.label, record.budget
    ));
    out.push_str(&format!(
        "  {:<20} {:>14} {:>12} {:>10}\n",
        "workload", "instructions", "millis", "MIPS"
    ));
    for m in &record.workloads {
        out.push_str(&format!(
            "  {:<20} {:>14} {:>12.2} {:>10.2}\n",
            m.name,
            m.instructions,
            m.nanos as f64 / 1e6,
            m.mips()
        ));
    }
    out
}

/// Serializes a run record as a `dynlink-simspeed/1` JSON object.
pub fn record_to_json(record: &RunRecord) -> json::Value {
    let workloads = record
        .workloads
        .iter()
        .map(|m| {
            json::Value::Object(vec![
                ("name".into(), json::Value::String(m.name.into())),
                (
                    "instructions".into(),
                    json::Value::Number(m.instructions as f64),
                ),
                ("nanos".into(), json::Value::Number(m.nanos as f64)),
                ("mips".into(), json::Value::Number(m.mips())),
            ])
        })
        .collect();
    json::Value::Object(vec![
        ("schema".into(), json::Value::String(SCHEMA.into())),
        ("label".into(), json::Value::String(record.label.clone())),
        ("budget".into(), json::Value::Number(record.budget as f64)),
        ("workloads".into(), json::Value::Array(workloads)),
    ])
}

/// Appends `record` to the JSON array in `path` (creating the file as a
/// one-element array if absent) and returns the new run count.
///
/// The appended array is re-validated before anything is written, so a
/// duplicate label or a label that would land out of PR order (see
/// [`validate`]) rejects the append and leaves the file untouched.
///
/// # Errors
///
/// Returns a message if the existing file fails to parse or validate,
/// if appending `record` would make it invalid, or on I/O failure.
pub fn append_record(path: &std::path::Path, record: &RunRecord) -> Result<usize, String> {
    let mut runs = match std::fs::read_to_string(path) {
        Ok(text) => match validate(&text) {
            Ok(v) => v,
            Err(e) => return Err(format!("{}: existing file invalid: {e}", path.display())),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    runs.push(record_to_json(record));
    let text = json::Value::Array(runs.clone()).pretty();
    if let Err(e) = validate(&text) {
        return Err(format!(
            "{}: appending `{}` would invalidate the file: {e}",
            path.display(),
            record.label
        ));
    }
    std::fs::write(path, text + "\n").map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(runs.len())
}

/// The PR sequence number of a `pr<N>-...` benchmark label, if the
/// label follows that convention (the convention every checked-in
/// record uses; free-form labels simply opt out of ordering checks).
fn pr_sequence(label: &str) -> Option<u64> {
    let digits: String = label
        .strip_prefix("pr")?
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Parses `text` and checks it against the `dynlink-simspeed/1` schema:
/// a JSON array of run objects, each with a `schema` tag, a `label`, a
/// positive `budget` and a non-empty `workloads` array of
/// `{name, instructions, nanos, mips}` objects. Returns the run values.
///
/// Beyond per-run shape, the array as a whole is the project's
/// performance trajectory, so its history rules are checked too:
/// labels must be unique (a duplicate silently shadows the run it
/// repeats) and `pr<N>-...` labels must appear in non-decreasing PR
/// order (an out-of-order insert rewrites history).
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate(text: &str) -> Result<Vec<json::Value>, String> {
    let value = json::parse(text)?;
    let json::Value::Array(runs) = value else {
        return Err("top level is not a JSON array".into());
    };
    let mut labels: Vec<String> = Vec::with_capacity(runs.len());
    for (i, run) in runs.iter().enumerate() {
        let json::Value::Object(fields) = run else {
            return Err(format!("run {i}: not an object"));
        };
        let get = |key: &str| -> Option<&json::Value> {
            fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        };
        match get("schema") {
            Some(json::Value::String(s)) if s == SCHEMA => {}
            _ => return Err(format!("run {i}: missing or wrong `schema` tag")),
        }
        match get("label") {
            Some(json::Value::String(s)) if !s.is_empty() => {
                if labels.iter().any(|l| l == s) {
                    return Err(format!("run {i}: duplicate label `{s}`"));
                }
                if let (Some(prev), Some(seq)) =
                    (labels.last().and_then(|l| pr_sequence(l)), pr_sequence(s))
                {
                    if seq < prev {
                        return Err(format!(
                            "run {i}: label `{s}` is out of order after `pr{prev}` entries"
                        ));
                    }
                }
                labels.push(s.clone());
            }
            _ => return Err(format!("run {i}: missing `label`")),
        }
        match get("budget") {
            Some(json::Value::Number(n)) if *n > 0.0 => {}
            _ => return Err(format!("run {i}: missing positive `budget`")),
        }
        let Some(json::Value::Array(workloads)) = get("workloads") else {
            return Err(format!("run {i}: missing `workloads` array"));
        };
        if workloads.is_empty() {
            return Err(format!("run {i}: empty `workloads`"));
        }
        for (j, w) in workloads.iter().enumerate() {
            let json::Value::Object(wf) = w else {
                return Err(format!("run {i} workload {j}: not an object"));
            };
            let wget = |key: &str| -> Option<&json::Value> {
                wf.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            };
            match wget("name") {
                Some(json::Value::String(s)) if !s.is_empty() => {}
                _ => return Err(format!("run {i} workload {j}: missing `name`")),
            }
            for key in ["instructions", "nanos", "mips"] {
                match wget(key) {
                    Some(json::Value::Number(n)) if *n >= 0.0 => {}
                    _ => return Err(format!("run {i} workload {j}: missing numeric `{key}`")),
                }
            }
        }
    }
    Ok(runs)
}

/// Extracts the MIPS figure for `workload` from a validated run value,
/// if present (used by the trajectory summary and tests).
pub fn run_mips(run: &json::Value, workload: &str) -> Option<f64> {
    let json::Value::Object(fields) = run else {
        return None;
    };
    let (_, json::Value::Array(workloads)) = fields.iter().find(|(k, _)| k == "workloads")? else {
        return None;
    };
    for w in workloads {
        let json::Value::Object(wf) = w else { continue };
        let name_ok = wf
            .iter()
            .any(|(k, v)| k == "name" && matches!(v, json::Value::String(s) if s == workload));
        if name_ok {
            if let Some((_, json::Value::Number(n))) = wf.iter().find(|(k, _)| k == "mips") {
                return Some(*n);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_execute_their_budget() {
        for name in WORKLOADS {
            let executed = run_workload(name, 20_000, true);
            assert!(
                executed >= 20_000,
                "{name}: executed only {executed} of 20000"
            );
            // The switch-heavy slice granularity may run a hair over.
            assert!(executed < 21_000, "{name}: ran far past budget");
        }
    }

    #[test]
    fn measurements_report_positive_mips() {
        let ms = measure_all(10_000, 2, true);
        assert_eq!(ms.len(), WORKLOADS.len());
        for m in &ms {
            assert!(m.mips() > 0.0, "{}: zero MIPS", m.name);
        }
    }

    #[test]
    fn record_roundtrips_through_schema_validation() {
        let record = RunRecord {
            label: "test".into(),
            budget: 10_000,
            workloads: measure_all(10_000, 1, false),
        };
        let text = json::Value::Array(vec![record_to_json(&record)]).pretty();
        let runs = validate(&text).expect("self-produced record validates");
        assert_eq!(runs.len(), 1);
        assert!(run_mips(&runs[0], "trampoline-heavy").unwrap() > 0.0);
    }

    #[test]
    fn append_grows_the_array() {
        let dir = std::env::temp_dir().join(format!("simspeed-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let _ = std::fs::remove_file(&path);
        let record = |label: &str| RunRecord {
            label: label.into(),
            budget: 1,
            workloads: vec![Measurement {
                name: "trampoline-heavy",
                instructions: 1,
                nanos: 1,
            }],
        };
        assert_eq!(append_record(&path, &record("pr1-a")).unwrap(), 1);
        assert_eq!(append_record(&path, &record("pr2-b")).unwrap(), 2);
        let runs = validate(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(runs.len(), 2);

        // A duplicate label or an out-of-PR-order label must reject the
        // append and leave the file as it was.
        let before = std::fs::read_to_string(&path).unwrap();
        let dup = append_record(&path, &record("pr1-a")).unwrap_err();
        assert!(dup.contains("duplicate label"), "{dup}");
        let stale = append_record(&path, &record("pr1-c")).unwrap_err();
        assert!(stale.contains("out of order"), "{stale}");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), before);

        // Same PR number and free-form labels are both still fine.
        assert_eq!(append_record(&path, &record("pr2-c")).unwrap(), 3);
        assert_eq!(append_record(&path, &record("scratch")).unwrap(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn validation_rejects_duplicate_and_out_of_order_labels() {
        let run = |label: &str| {
            format!(
                "{{\"schema\": \"{SCHEMA}\", \"label\": \"{label}\", \"budget\": 5, \
                 \"workloads\": [{{\"name\": \"t\", \"instructions\": 1, \"nanos\": 1, \
                 \"mips\": 1}}]}}"
            )
        };
        let dup = format!("[{}, {}]", run("pr4-x"), run("pr4-x"));
        assert!(
            validate(&dup).unwrap_err().contains("duplicate label"),
            "duplicate labels must be rejected"
        );
        let unordered = format!("[{}, {}]", run("pr6-x"), run("pr4-y"));
        assert!(
            validate(&unordered).unwrap_err().contains("out of order"),
            "a PR label landing after a later PR must be rejected"
        );
        let ok = format!("[{}, {}, {}]", run("pr4-x"), run("pr4-y"), run("pr6-z"));
        assert_eq!(validate(&ok).unwrap().len(), 3);
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(validate("{}").is_err(), "object top level");
        assert!(validate("[1]").is_err(), "non-object run");
        assert!(
            validate("[{\"schema\": \"wrong/9\"}]").is_err(),
            "wrong schema tag"
        );
        let missing_mips = format!(
            "[{{\"schema\": \"{SCHEMA}\", \"label\": \"x\", \"budget\": 5, \
             \"workloads\": [{{\"name\": \"t\", \"instructions\": 1, \"nanos\": 1}}]}}]"
        );
        assert!(validate(&missing_mips).is_err(), "workload missing mips");
    }
}
