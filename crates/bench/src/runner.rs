//! Sharded multi-threaded experiment runner.
//!
//! The experiment matrix (4 workloads × {baseline, ABTB, no-Bloom} ×
//! parameter sweeps) is embarrassingly parallel, and `System` is `Send`,
//! so whole simulations can ship to worker threads. This module provides
//! the harness the `repro` binary and the benches share:
//!
//! * **Sharding** — work cells are pulled from a bounded queue (a shared
//!   cursor over the cell vector) by `--jobs` workers under
//!   [`std::thread::scope`], so a long cell never idles the other
//!   workers.
//! * **Determinism** — every cell gets a [`dynlink_rng::Rng`] derived
//!   from the run seed and the *cell index* (never the worker id or
//!   completion order), and results are returned in cell order. Output
//!   is therefore bit-identical at any `--jobs` level, including 1.
//! * **Panic isolation** — a panicking cell fails that cell
//!   ([`CellOutcome::Panicked`]), not the whole run.
//! * **Accounting** — per-worker wall-clock and [`PerfCounters`]
//!   aggregates for the run report, merged in worker-index order.
//!
//! ```
//! use dynlink_bench::runner::{ParallelRunner, Cell};
//!
//! let runner = ParallelRunner::new(2);
//! let report = runner.run(
//!     0x5eed,
//!     (0..8u64)
//!         .map(|i| Cell::new(format!("cell{i}"), move |ctx| i * 2 + ctx.rng.next_u64() % 1))
//!         .collect(),
//! );
//! let values: Vec<u64> = report.into_values().map(|v| v.unwrap()).collect();
//! assert_eq!(values, vec![0, 2, 4, 6, 8, 10, 12, 14]);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dynlink_rng::Rng;
use dynlink_uarch::PerfCounters;

/// Returns the machine's available parallelism (the `--jobs` default).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Context handed to each work cell.
pub struct CellCtx {
    /// Deterministic per-cell generator: derived from the run seed and
    /// the cell index, identical at every `--jobs` level.
    pub rng: Rng,
    /// Index of this cell in the submitted vector.
    pub index: usize,
    counters: PerfCounters,
}

impl CellCtx {
    /// Folds a simulation's counters into the per-worker aggregate
    /// reported by [`RunReport::worker_counters`].
    pub fn record_counters(&mut self, c: &PerfCounters) {
        self.counters.accumulate(c);
    }
}

/// The boxed work closure of a [`Cell`].
type CellWork<'a, T> = Box<dyn FnOnce(&mut CellCtx) -> T + Send + 'a>;

/// One schedulable unit of work. The lifetime lets cells borrow data
/// owned by the caller (e.g. the shared workload datasets): the runner
/// executes under [`std::thread::scope`], which guarantees every worker
/// joins before the borrow ends.
pub struct Cell<'a, T> {
    label: String,
    work: CellWork<'a, T>,
}

impl<'a, T> Cell<'a, T> {
    /// Creates a cell with a display label and its work closure.
    pub fn new(label: impl Into<String>, work: impl FnOnce(&mut CellCtx) -> T + Send + 'a) -> Self {
        Cell {
            label: label.into(),
            work: Box::new(work),
        }
    }
}

/// How a cell finished.
#[derive(Debug)]
pub enum CellOutcome<T> {
    /// The cell returned a value.
    Done(T),
    /// The cell panicked; the payload message is preserved. Other cells
    /// are unaffected.
    Panicked(String),
}

impl<T> CellOutcome<T> {
    /// Unwraps the value, panicking (in the *caller*) on a failed cell.
    pub fn unwrap(self) -> T {
        match self {
            CellOutcome::Done(v) => v,
            CellOutcome::Panicked(msg) => panic!("cell panicked: {msg}"),
        }
    }

    /// Returns the value if the cell succeeded.
    pub fn ok(self) -> Option<T> {
        match self {
            CellOutcome::Done(v) => Some(v),
            CellOutcome::Panicked(_) => None,
        }
    }
}

/// A completed cell, in submission order.
#[derive(Debug)]
pub struct CellResult<T> {
    /// The label given at [`Cell::new`].
    pub label: String,
    /// Value or isolated panic.
    pub outcome: CellOutcome<T>,
    /// Wall-clock time the cell took on its worker.
    pub wall: Duration,
}

/// Aggregate statistics for one worker thread.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Number of cells this worker executed.
    pub cells: usize,
    /// Total wall-clock this worker spent inside cells.
    pub busy: Duration,
    /// Sum of all counters recorded by cells on this worker.
    pub counters: PerfCounters,
}

/// Everything a [`ParallelRunner::run`] call produced.
#[derive(Debug)]
pub struct RunReport<T> {
    /// Per-cell results, in submission order (not completion order).
    pub cells: Vec<CellResult<T>>,
    /// Per-worker aggregates, indexed by worker id.
    pub workers: Vec<WorkerStats>,
    /// End-to-end wall-clock of the whole run.
    pub wall: Duration,
}

impl<T> RunReport<T> {
    /// Iterates the cell values in submission order.
    pub fn into_values(self) -> impl Iterator<Item = CellOutcome<T>> {
        self.cells.into_iter().map(|c| c.outcome)
    }

    /// Sum of every counter recorded by every cell (worker-order merge,
    /// deterministic because counter accumulation is commutative and
    /// workers are merged by index).
    pub fn worker_counters(&self) -> PerfCounters {
        let mut total = PerfCounters::default();
        for w in &self.workers {
            total.accumulate(&w.counters);
        }
        total
    }

    /// Labels and wall-clock of each cell, for timing reports.
    pub fn timings(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.cells.iter().map(|c| (c.label.as_str(), c.wall))
    }
}

/// The sharded runner. Construct once per run with the desired worker
/// count; `jobs == 1` executes on the calling thread's scope worker and
/// is the serial reference the determinism tests compare against.
#[derive(Debug, Clone)]
pub struct ParallelRunner {
    jobs: usize,
}

impl ParallelRunner {
    /// Creates a runner with `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        ParallelRunner { jobs: jobs.max(1) }
    }

    /// Creates a runner using [`default_jobs`].
    pub fn with_default_jobs() -> Self {
        ParallelRunner::new(default_jobs())
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Executes every cell and returns results in submission order.
    ///
    /// `seed` roots the per-cell RNG derivation; two runs with the same
    /// seed and cells produce identical values regardless of `jobs`.
    pub fn run<'a, T: Send>(&self, seed: u64, cells: Vec<Cell<'a, T>>) -> RunReport<T> {
        let started = Instant::now();
        let n = cells.len();
        let jobs = self.jobs.min(n.max(1));
        let base_rng = Rng::seed_from_u64(seed);

        // The bounded work queue: slots hold the pending cells, the
        // cursor is the next index to claim. Workers pop by index so a
        // slow cell can't stall the others, and the queue can never grow
        // beyond the submitted vector.
        struct Slot<'a, T> {
            label: String,
            work: Option<CellWork<'a, T>>,
        }
        let slots: Vec<Mutex<Slot<'a, T>>> = cells
            .into_iter()
            .map(|c| {
                Mutex::new(Slot {
                    label: c.label,
                    work: Some(c.work),
                })
            })
            .collect();
        let cursor = Mutex::new(0usize);
        type DoneSlot<T> = Mutex<Option<(CellOutcome<T>, Duration)>>;
        let done: Vec<DoneSlot<T>> = (0..n).map(|_| Mutex::new(None)).collect();

        let mut workers = vec![WorkerStats::default(); jobs];
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(jobs);
            for _ in 0..jobs {
                let base_rng = &base_rng;
                let slots = &slots;
                let cursor = &cursor;
                let done = &done;
                handles.push(scope.spawn(move || {
                    let mut stats = WorkerStats::default();
                    loop {
                        let index = {
                            let mut cur = cursor.lock().expect("queue cursor poisoned");
                            if *cur >= slots.len() {
                                break;
                            }
                            let i = *cur;
                            *cur += 1;
                            i
                        };
                        let (label, work) = {
                            let mut slot = slots[index].lock().expect("work slot poisoned");
                            (
                                slot.label.clone(),
                                slot.work.take().expect("cell claimed twice"),
                            )
                        };
                        let _ = label;
                        let mut ctx = CellCtx {
                            rng: base_rng.derive(index as u64),
                            index,
                            counters: PerfCounters::default(),
                        };
                        let cell_start = Instant::now();
                        let outcome = match catch_unwind(AssertUnwindSafe(|| work(&mut ctx))) {
                            Ok(v) => CellOutcome::Done(v),
                            Err(payload) => CellOutcome::Panicked(panic_message(&*payload)),
                        };
                        let wall = cell_start.elapsed();
                        stats.cells += 1;
                        stats.busy += wall;
                        stats.counters.accumulate(&ctx.counters);
                        *done[index].lock().expect("result slot poisoned") = Some((outcome, wall));
                    }
                    stats
                }));
            }
            for (i, h) in handles.into_iter().enumerate() {
                workers[i] = h.join().expect("worker thread itself never panics");
            }
        });

        let cells = slots
            .into_iter()
            .zip(done)
            .map(|(slot, result)| {
                let slot = slot.into_inner().expect("work slot poisoned");
                let (outcome, wall) = result
                    .into_inner()
                    .expect("result slot poisoned")
                    .expect("every cell was executed");
                CellResult {
                    label: slot.label,
                    outcome,
                    wall,
                }
            })
            .collect();

        RunReport {
            cells,
            workers,
            wall: started.elapsed(),
        }
    }
}

/// Best-effort extraction of a panic payload message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The workhorse property: results are in submission order and
    /// identical at every jobs level.
    #[test]
    fn results_are_ordered_and_jobs_invariant() {
        let make_cells = || {
            (0..32u64)
                .map(|i| {
                    Cell::new(format!("c{i}"), move |ctx: &mut CellCtx| {
                        // Mix the deterministic per-cell RNG into the value
                        // so seed derivation is covered too.
                        i * 1000 + ctx.rng.next_u64() % 1000
                    })
                })
                .collect::<Vec<_>>()
        };
        let serial: Vec<u64> = ParallelRunner::new(1)
            .run(42, make_cells())
            .into_values()
            .map(CellOutcome::unwrap)
            .collect();
        for jobs in [2, 4, 8] {
            let par: Vec<u64> = ParallelRunner::new(jobs)
                .run(42, make_cells())
                .into_values()
                .map(CellOutcome::unwrap)
                .collect();
            assert_eq!(serial, par, "jobs={jobs}");
        }
    }

    #[test]
    fn a_panicking_cell_fails_alone() {
        let cells = vec![
            Cell::new("ok0", |_ctx: &mut CellCtx| 1u64),
            Cell::new("boom", |_ctx: &mut CellCtx| panic!("deliberate test panic")),
            Cell::new("ok2", |_ctx: &mut CellCtx| 3u64),
        ];
        let report = ParallelRunner::new(2).run(0, cells);
        let outcomes: Vec<_> = report.cells.iter().map(|c| &c.outcome).collect();
        assert!(matches!(outcomes[0], CellOutcome::Done(1)));
        assert!(
            matches!(outcomes[1], CellOutcome::Panicked(m) if m.contains("deliberate")),
            "{outcomes:?}"
        );
        assert!(matches!(outcomes[2], CellOutcome::Done(3)));
    }

    #[test]
    fn worker_counters_aggregate() {
        let cells: Vec<Cell<()>> = (0..10)
            .map(|_| {
                Cell::new("count", |ctx: &mut CellCtx| {
                    let c = PerfCounters {
                        instructions: 5,
                        ..Default::default()
                    };
                    ctx.record_counters(&c);
                })
            })
            .collect();
        let report = ParallelRunner::new(3).run(0, cells);
        assert_eq!(report.worker_counters().instructions, 50);
        assert_eq!(report.workers.iter().map(|w| w.cells).sum::<usize>(), 10);
    }

    #[test]
    fn more_jobs_than_cells_is_fine() {
        let report =
            ParallelRunner::new(64).run(7, vec![Cell::new("solo", |_ctx: &mut CellCtx| 99u32)]);
        assert_eq!(report.cells.len(), 1);
        assert!(matches!(report.cells[0].outcome, CellOutcome::Done(99)));
    }

    #[test]
    fn timings_cover_every_cell() {
        let cells: Vec<Cell<u8>> = (0..4)
            .map(|i| Cell::new(format!("t{i}"), move |_: &mut CellCtx| i))
            .collect();
        let report = ParallelRunner::new(2).run(0, cells);
        assert_eq!(report.timings().count(), 4);
        assert!(report.wall >= Duration::ZERO);
    }
}
