//! Memory access errors.

use dynlink_isa::VirtAddr;
use std::fmt;

use crate::Perms;

/// Errors produced by [`crate::AddressSpace`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The address is not mapped.
    Unmapped {
        /// The faulting address.
        addr: VirtAddr,
    },
    /// The page is mapped but lacks the required permission.
    PermissionDenied {
        /// The faulting address.
        addr: VirtAddr,
        /// The permission that was required.
        need: Perms,
        /// The permissions the page actually has.
        have: Perms,
    },
    /// A data access hit a page that holds decoded instructions, or an
    /// instruction fetch/placement hit a data page.
    KindMismatch {
        /// The faulting address.
        addr: VirtAddr,
        /// `true` if the access expected a code page.
        expected_code: bool,
    },
    /// A region mapping overlaps an existing mapping.
    AlreadyMapped {
        /// First already-mapped page address in the requested range.
        addr: VirtAddr,
    },
    /// No instruction has been placed at this executable address.
    NoInstruction {
        /// The fetch address.
        addr: VirtAddr,
    },
    /// The page is registered (its extent is known to the loader) but
    /// its contents are architecturally not present — a demand-paging
    /// fetch fault. Recoverable: faulting the page in and retrying the
    /// access succeeds.
    NotPresent {
        /// The faulting address.
        addr: VirtAddr,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "address {addr} is not mapped"),
            MemError::PermissionDenied { addr, need, have } => {
                write!(f, "permission denied at {addr}: need {need}, have {have}")
            }
            MemError::KindMismatch {
                addr,
                expected_code,
            } => {
                if *expected_code {
                    write!(f, "code access at {addr} hit a data page")
                } else {
                    write!(f, "data access at {addr} hit a code page")
                }
            }
            MemError::AlreadyMapped { addr } => {
                write!(f, "page at {addr} is already mapped")
            }
            MemError::NoInstruction { addr } => {
                write!(f, "no instruction placed at {addr}")
            }
            MemError::NotPresent { addr } => {
                write!(
                    f,
                    "page at {addr} is not present (demand-paging fetch fault)"
                )
            }
        }
    }
}

impl std::error::Error for MemError {}
