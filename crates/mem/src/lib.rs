//! # dynlink-mem
//!
//! Sparse paged virtual memory for the `dynlink-sim` workspace.
//!
//! Provides the [`AddressSpace`] abstraction used by the simulated CPU
//! and dynamic linker:
//!
//! * sparse 4 KiB pages holding either **data bytes** (heap, stack, GOT)
//!   or **decoded instructions** (text, PLT) — see [`AddressSpace::place_code`];
//! * per-page [`Perms`] (read/write/execute), so the paper's
//!   software-emulation caveat of having to unprotect code pages to patch
//!   call sites (§2.3, §4.3) is modelled faithfully;
//! * **copy-on-write [`AddressSpace::fork`]** with page-copy accounting,
//!   reproducing the prefork memory-overhead analysis of §5.5 (a patched
//!   code page in a forked child forces a private page copy; the
//!   hardware mechanism never patches and therefore never copies);
//! * a **demand-paging state** for code pages: an extent can be
//!   registered but architecturally not present
//!   ([`AddressSpace::evict_code_page`]); fetches then report
//!   [`MemError::NotPresent`] until [`AddressSpace::fault_in_code`]
//!   flips the page resident, and module GC tears extents down with
//!   [`AddressSpace::unmap_region`] + [`AddressSpace::refresh_uid`];
//! * a conventional [`layout`] helper for placing the executable, heap,
//!   libraries (near or far) and stack.
//!
//! # Examples
//!
//! ```
//! use dynlink_isa::VirtAddr;
//! use dynlink_mem::{AddressSpace, Perms};
//!
//! let mut space = AddressSpace::new(1);
//! space.map_region(VirtAddr::new(0x1000), 0x2000, Perms::RW)?;
//! space.write_u64(VirtAddr::new(0x1008), 0xdead_beef)?;
//! assert_eq!(space.read_u64(VirtAddr::new(0x1008))?, 0xdead_beef);
//!
//! // Forked children share pages copy-on-write.
//! let mut child = space.fork(2);
//! child.write_u64(VirtAddr::new(0x1008), 7)?;
//! assert_eq!(space.read_u64(VirtAddr::new(0x1008))?, 0xdead_beef);
//! assert_eq!(child.stats().cow_copies, 1);
//! # Ok::<(), dynlink_mem::MemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod layout;
mod perms;
mod space;

pub use error::MemError;
pub use perms::Perms;
pub use space::{AddressSpace, MemStats, PAGE_BYTES};
