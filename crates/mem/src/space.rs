//! The sparse, copy-on-write address space.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dynlink_isa::{Inst, VirtAddr};

use crate::{MemError, Perms};

/// Page size in bytes (4 KiB, as on the paper's x86-64 testbed).
pub const PAGE_BYTES: u64 = 4096;

/// Process-wide counter backing [`AddressSpace::uid`]. Every distinct
/// space instance (new, fork, clone) gets a fresh value, so fetch-side
/// caches can tag entries by space identity rather than by ASID (which
/// deliberately aliases in the §3.3 experiments).
static NEXT_UID: AtomicU64 = AtomicU64::new(1);

fn fresh_uid() -> u64 {
    NEXT_UID.fetch_add(1, Ordering::Relaxed)
}

type DataBytes = [u8; PAGE_BYTES as usize];
type CodeMap = BTreeMap<u16, Inst>;

/// Hasher for the page table. Keys are page numbers — small, dense
/// integers fully controlled by the simulator, never attacker-supplied
/// — so SipHash's DoS resistance buys nothing while its latency sits on
/// the data-access hot path (every load/store resolves its page through
/// this map). A single odd-constant multiply with a high→low fold
/// spreads sequential page numbers across hashbrown's low index bits.
#[derive(Debug, Default, Clone, Copy)]
struct PageNumberHasher(u64);

impl std::hash::Hasher for PageNumberHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-1a); `u64` keys take `write_u64`.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let h = (v ^ self.0).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = h ^ (h >> 32);
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct BuildPageNumberHasher;

impl std::hash::BuildHasher for BuildPageNumberHasher {
    type Hasher = PageNumberHasher;

    #[inline]
    fn build_hasher(&self) -> PageNumberHasher {
        PageNumberHasher(0)
    }
}

type PageTable = HashMap<u64, PageEntry, BuildPageNumberHasher>;

#[derive(Debug, Clone)]
enum PageContent {
    Data(Arc<DataBytes>),
    Code(Arc<CodeMap>),
    /// A code page whose extent is registered but whose contents are
    /// architecturally **not present** — the demand-paging state. The
    /// backing instructions are retained (the "image on disk"), so
    /// faulting the page back in is a state flip, but any fetch while
    /// in this state reports [`MemError::NotPresent`]. The entry stays
    /// in the page table so overlapping mappings are still rejected.
    CodeNotPresent(Arc<CodeMap>),
}

#[derive(Debug, Clone)]
struct PageEntry {
    perms: Perms,
    content: PageContent,
}

/// Accounting counters for one [`AddressSpace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Number of pages currently mapped.
    pub pages_mapped: u64,
    /// Number of private page copies forced by writes to pages shared
    /// with a fork parent/sibling (the quantity §5.5 of the paper counts
    /// against the software call-site-patching approach).
    pub cow_copies: u64,
    /// Number of runtime instruction patches applied via
    /// [`AddressSpace::patch_code`].
    pub code_patches: u64,
}

impl MemStats {
    /// Bytes of memory wasted on private copies of formerly shared pages.
    pub fn cow_bytes(&self) -> u64 {
        self.cow_copies * PAGE_BYTES
    }
}

/// A sparse, paged, copy-on-write virtual address space.
///
/// Pages hold either raw data bytes or decoded instructions; see the
/// crate-level docs for the rationale. All accesses are permission
/// checked. [`AddressSpace::fork`] shares pages copy-on-write and the
/// copies forced by later writes are counted in [`MemStats::cow_copies`].
#[derive(Debug)]
pub struct AddressSpace {
    asid: u64,
    uid: u64,
    /// Fetch-side *code* identity: equal to `uid` for a private space,
    /// shared across a [`AddressSpace::fork_shared_code`] family until
    /// a member's code state diverges (see
    /// [`AddressSpace::code_uid`]).
    code_uid: u64,
    /// Whether `code_uid` may be aliased by another live space; set by
    /// `fork_shared_code` on both sides, cleared by privatization.
    code_shared: bool,
    pages: PageTable,
    stats: MemStats,
    code_version: u64,
}

impl Clone for AddressSpace {
    /// Cloning yields an independent space, so the clone gets a fresh
    /// [`AddressSpace::uid`] — a clone may diverge from the original
    /// (e.g. via [`AddressSpace::place_code`], which does not bump
    /// [`AddressSpace::code_version`]) and must never alias it in
    /// fetch-side caches.
    fn clone(&self) -> Self {
        let uid = fresh_uid();
        AddressSpace {
            asid: self.asid,
            uid,
            code_uid: uid,
            code_shared: false,
            pages: self.pages.clone(),
            stats: self.stats,
            code_version: self.code_version,
        }
    }
}

impl AddressSpace {
    /// Creates an empty address space with the given address-space ID.
    pub fn new(asid: u64) -> Self {
        let uid = fresh_uid();
        AddressSpace {
            asid,
            uid,
            code_uid: uid,
            code_shared: false,
            pages: PageTable::default(),
            stats: MemStats::default(),
            code_version: 0,
        }
    }

    /// The address-space ID (used by ASID-tagged TLBs/ABTBs).
    pub fn asid(&self) -> u64 {
        self.asid
    }

    /// A process-wide unique identity for this space instance.
    ///
    /// Unlike [`AddressSpace::asid`] — which experiments deliberately
    /// alias across processes — the uid is never reused: `new`, `fork`
    /// and `clone` all mint a fresh one. Fetch-side predecode caches
    /// key on `(uid, page, code_version)` so a context switch between
    /// ASID-aliasing processes can never serve stale instructions.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// The fetch-side *code* identity for this space.
    ///
    /// Equal to [`AddressSpace::uid`] for a privately loaded space. A
    /// [`AddressSpace::fork_shared_code`] family shares one `code_uid`,
    /// so predecode/superblock caches keyed on
    /// `(code_uid, page, code_version)` serve all members from one set
    /// of entries — what makes thousands of tenants forked from one
    /// template affordable. The sharing contract: any operation that
    /// changes a member's architectural code state (placing, patching,
    /// evicting, faulting-in or unmapping code, or mapping a new code
    /// region) first *privatizes* that member — mints it a fresh
    /// `code_uid` — so a diverged member can never serve, or be served
    /// by, its siblings' cached decode.
    pub fn code_uid(&self) -> u64 {
        self.code_uid
    }

    /// Whether this space's `code_uid` may be shared with siblings.
    pub fn code_is_shared(&self) -> bool {
        self.code_shared
    }

    /// Severs this space from a shared code identity before a local
    /// code-state change. No-op for a private space, so every
    /// historically single-owner path keeps its `code_uid` stable
    /// across evictions/patches exactly as `uid` was.
    fn privatize_code(&mut self) {
        if self.code_shared {
            self.code_uid = fresh_uid();
            self.code_shared = false;
        }
    }

    /// Accounting counters.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// A counter bumped on every runtime code patch; fetch-side decoded
    /// caches use it to detect self-modifying code.
    pub fn code_version(&self) -> u64 {
        self.code_version
    }

    /// Returns `true` if the page containing `addr` is mapped.
    pub fn is_mapped(&self, addr: VirtAddr) -> bool {
        self.pages.contains_key(&addr.page_number(PAGE_BYTES))
    }

    /// Returns the permissions of the page containing `addr`, if mapped.
    pub fn perms_at(&self, addr: VirtAddr) -> Option<Perms> {
        self.pages
            .get(&addr.page_number(PAGE_BYTES))
            .map(|p| p.perms)
    }

    fn page_range(start: VirtAddr, len: u64) -> std::ops::RangeInclusive<u64> {
        assert!(len > 0, "cannot map an empty region");
        let first = start.page_number(PAGE_BYTES);
        let last = (start + (len - 1)).page_number(PAGE_BYTES);
        first..=last
    }

    fn map_with(
        &mut self,
        start: VirtAddr,
        len: u64,
        perms: Perms,
        mut make: impl FnMut() -> PageContent,
    ) -> Result<(), MemError> {
        let range = Self::page_range(start, len);
        for pn in range.clone() {
            if self.pages.contains_key(&pn) {
                return Err(MemError::AlreadyMapped {
                    addr: VirtAddr::new(pn * PAGE_BYTES),
                });
            }
        }
        for pn in range {
            self.pages.insert(
                pn,
                PageEntry {
                    perms,
                    content: make(),
                },
            );
            self.stats.pages_mapped += 1;
        }
        Ok(())
    }

    /// Maps `len` bytes of zeroed data pages starting at `start`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AlreadyMapped`] if any page in the range is
    /// already mapped.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn map_region(&mut self, start: VirtAddr, len: u64, perms: Perms) -> Result<(), MemError> {
        self.map_with(start, len, perms, || {
            PageContent::Data(Arc::new([0u8; PAGE_BYTES as usize]))
        })
    }

    /// Maps `len` bytes of empty code pages starting at `start`.
    ///
    /// Instructions are later placed with [`AddressSpace::place_code`].
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AlreadyMapped`] if any page in the range is
    /// already mapped.
    pub fn map_code_region(
        &mut self,
        start: VirtAddr,
        len: u64,
        perms: Perms,
    ) -> Result<(), MemError> {
        // A new code mapping must not be visible through a shared
        // fetch-side identity: siblings do not map these pages.
        self.privatize_code();
        self.map_with(start, len, perms, || {
            PageContent::Code(Arc::new(CodeMap::new()))
        })
    }

    /// Changes the permissions of every page overlapping `[start, start+len)`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] if any page in the range is not
    /// mapped (no partial changes are applied).
    pub fn protect(&mut self, start: VirtAddr, len: u64, perms: Perms) -> Result<(), MemError> {
        let range = Self::page_range(start, len);
        for pn in range.clone() {
            if !self.pages.contains_key(&pn) {
                return Err(MemError::Unmapped {
                    addr: VirtAddr::new(pn * PAGE_BYTES),
                });
            }
        }
        for pn in range {
            self.pages.get_mut(&pn).expect("validated above").perms = perms;
        }
        Ok(())
    }

    fn entry(&self, addr: VirtAddr) -> Result<&PageEntry, MemError> {
        self.pages
            .get(&addr.page_number(PAGE_BYTES))
            .ok_or(MemError::Unmapped { addr })
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::Unmapped`], [`MemError::PermissionDenied`]
    /// (missing read permission) or [`MemError::KindMismatch`] (code
    /// page). No partial reads occur: the whole range is validated first.
    pub fn read_bytes(&self, addr: VirtAddr, buf: &mut [u8]) -> Result<(), MemError> {
        if buf.is_empty() {
            return Ok(());
        }
        // Fast path: the whole range sits on one page (the common case —
        // GOT slots, stack words, small buffers), so one map lookup and
        // one slice copy suffice.
        let first_pn = addr.page_number(PAGE_BYTES);
        let last_pn = (addr + (buf.len() as u64 - 1)).page_number(PAGE_BYTES);
        if first_pn == last_pn {
            let data = self.readable_data_page(first_pn)?;
            let off = addr.page_offset(PAGE_BYTES) as usize;
            buf.copy_from_slice(&data[off..off + buf.len()]);
            return Ok(());
        }
        // Multi-page: validate the whole range first, then copy with one
        // slice op per page.
        for pn in first_pn..=last_pn {
            self.readable_data_page(pn)?;
        }
        let mut i = 0usize;
        let mut cursor = addr;
        while i < buf.len() {
            let pn = cursor.page_number(PAGE_BYTES);
            let entry = self.pages.get(&pn).expect("validated");
            let PageContent::Data(data) = &entry.content else {
                unreachable!("validated")
            };
            let off = cursor.page_offset(PAGE_BYTES) as usize;
            let n = (PAGE_BYTES as usize - off).min(buf.len() - i);
            buf[i..i + n].copy_from_slice(&data[off..off + n]);
            i += n;
            cursor += n as u64;
        }
        Ok(())
    }

    /// Resolves page `pn` for a data read, reporting errors against the
    /// page base address exactly as the historical per-page validation
    /// loop did.
    #[inline]
    fn readable_data_page(&self, pn: u64) -> Result<&DataBytes, MemError> {
        let page_addr = VirtAddr::new(pn * PAGE_BYTES);
        let entry = self
            .pages
            .get(&pn)
            .ok_or(MemError::Unmapped { addr: page_addr })?;
        if !entry.perms.can_read() {
            return Err(MemError::PermissionDenied {
                addr: page_addr,
                need: Perms::R,
                have: entry.perms,
            });
        }
        match &entry.content {
            PageContent::Data(data) => Ok(data),
            PageContent::Code(_) | PageContent::CodeNotPresent(_) => Err(MemError::KindMismatch {
                addr: page_addr,
                expected_code: false,
            }),
        }
    }

    /// Validates page `pn` for a data write (same error reporting rules
    /// as [`AddressSpace::readable_data_page`]).
    fn check_writable_data_page(&self, pn: u64) -> Result<(), MemError> {
        let page_addr = VirtAddr::new(pn * PAGE_BYTES);
        let entry = self
            .pages
            .get(&pn)
            .ok_or(MemError::Unmapped { addr: page_addr })?;
        if !entry.perms.can_write() {
            return Err(MemError::PermissionDenied {
                addr: page_addr,
                need: Perms::W,
                have: entry.perms,
            });
        }
        if !matches!(entry.content, PageContent::Data(_)) {
            return Err(MemError::KindMismatch {
                addr: page_addr,
                expected_code: false,
            });
        }
        Ok(())
    }

    /// Copies `src` into page `pn` at `off`, doing the COW accounting.
    /// The page must already be validated as writable data.
    fn write_into_page(&mut self, pn: u64, off: usize, src: &[u8]) {
        let entry = self.pages.get_mut(&pn).expect("validated");
        let PageContent::Data(data) = &mut entry.content else {
            unreachable!("validated")
        };
        if Arc::strong_count(data) > 1 {
            self.stats.cow_copies += 1;
        }
        let page = Arc::make_mut(data);
        page[off..off + src.len()].copy_from_slice(src);
    }

    /// Validates *and* writes a single-page store in one page-table
    /// lookup — the hot path behind every in-page [`write_bytes`] and
    /// [`write_u64`]. Error reporting is identical to the two-step
    /// validate-then-write path: errors name the page base address and
    /// nothing is written on failure (a single page either fully
    /// validates or fully fails).
    ///
    /// [`write_bytes`]: AddressSpace::write_bytes
    /// [`write_u64`]: AddressSpace::write_u64
    #[inline]
    fn write_page_checked(&mut self, pn: u64, off: usize, src: &[u8]) -> Result<(), MemError> {
        let entry = match self.pages.get_mut(&pn) {
            Some(entry) => entry,
            None => {
                return Err(MemError::Unmapped {
                    addr: VirtAddr::new(pn * PAGE_BYTES),
                })
            }
        };
        if !entry.perms.can_write() {
            return Err(MemError::PermissionDenied {
                addr: VirtAddr::new(pn * PAGE_BYTES),
                need: Perms::W,
                have: entry.perms,
            });
        }
        let PageContent::Data(data) = &mut entry.content else {
            return Err(MemError::KindMismatch {
                addr: VirtAddr::new(pn * PAGE_BYTES),
                expected_code: false,
            });
        };
        // One uniqueness probe serves both the COW-copy count and the
        // mutable borrow (page `Arc`s never have weak refs, so
        // `get_mut` failing means exactly `strong_count > 1`).
        match Arc::get_mut(data) {
            Some(page) => page[off..off + src.len()].copy_from_slice(src),
            None => {
                self.stats.cow_copies += 1;
                let page = Arc::make_mut(data);
                page[off..off + src.len()].copy_from_slice(src);
            }
        }
        Ok(())
    }

    /// Writes `buf` starting at `addr`, performing copy-on-write if the
    /// underlying pages are shared with a forked space.
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::Unmapped`], [`MemError::PermissionDenied`]
    /// (missing write permission) or [`MemError::KindMismatch`] (code
    /// page). No partial writes occur.
    #[inline]
    pub fn write_bytes(&mut self, addr: VirtAddr, buf: &[u8]) -> Result<(), MemError> {
        if buf.is_empty() {
            return Ok(());
        }
        // Fast path: single destination page.
        let first_pn = addr.page_number(PAGE_BYTES);
        let last_pn = (addr + (buf.len() as u64 - 1)).page_number(PAGE_BYTES);
        if first_pn == last_pn {
            let off = addr.page_offset(PAGE_BYTES) as usize;
            return self.write_page_checked(first_pn, off, buf);
        }
        // Multi-page: validate everything, then one slice copy per page.
        for pn in first_pn..=last_pn {
            self.check_writable_data_page(pn)?;
        }
        let mut i = 0usize;
        let mut cursor = addr;
        while i < buf.len() {
            let pn = cursor.page_number(PAGE_BYTES);
            let off = cursor.page_offset(PAGE_BYTES) as usize;
            let n = (PAGE_BYTES as usize - off).min(buf.len() - i);
            self.write_into_page(pn, off, &buf[i..i + n]);
            i += n;
            cursor += n as u64;
        }
        Ok(())
    }

    /// Reads a little-endian `u64` (e.g. a GOT slot).
    ///
    /// # Errors
    ///
    /// Same as [`AddressSpace::read_bytes`].
    #[inline]
    pub fn read_u64(&self, addr: VirtAddr) -> Result<u64, MemError> {
        // In-page fast path: one page-table lookup, no bounce buffer.
        let off = addr.page_offset(PAGE_BYTES) as usize;
        if off <= PAGE_BYTES as usize - 8 {
            let data = self.readable_data_page(addr.page_number(PAGE_BYTES))?;
            let mut word = [0u8; 8];
            word.copy_from_slice(&data[off..off + 8]);
            return Ok(u64::from_le_bytes(word));
        }
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64` (e.g. a GOT slot).
    ///
    /// # Errors
    ///
    /// Same as [`AddressSpace::write_bytes`].
    #[inline]
    pub fn write_u64(&mut self, addr: VirtAddr, value: u64) -> Result<(), MemError> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Places a decoded instruction at `addr` (loader-time operation:
    /// ignores the write permission and performs no COW accounting).
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::Unmapped`] or [`MemError::KindMismatch`] if
    /// `addr` is not within a mapped code page.
    pub fn place_code(&mut self, addr: VirtAddr, inst: Inst) -> Result<(), MemError> {
        // `place_code` does not bump `code_version`, so a shared
        // identity would leak the placement to siblings.
        self.privatize_code();
        let pn = addr.page_number(PAGE_BYTES);
        let entry = self.pages.get_mut(&pn).ok_or(MemError::Unmapped { addr })?;
        // Placement also works on a not-present page: it writes the
        // *backing* image, which is what a later fault-in makes visible.
        let (PageContent::Code(code) | PageContent::CodeNotPresent(code)) = &mut entry.content
        else {
            return Err(MemError::KindMismatch {
                addr,
                expected_code: true,
            });
        };
        Arc::make_mut(code).insert(addr.page_offset(PAGE_BYTES) as u16, inst);
        Ok(())
    }

    /// Fetches the instruction at `addr`.
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::Unmapped`], [`MemError::PermissionDenied`]
    /// (missing execute permission), [`MemError::KindMismatch`] (data
    /// page) or [`MemError::NoInstruction`].
    pub fn fetch_code(&self, addr: VirtAddr) -> Result<Inst, MemError> {
        let entry = self.entry(addr)?;
        if !entry.perms.can_exec() {
            return Err(MemError::PermissionDenied {
                addr,
                need: Perms::X,
                have: entry.perms,
            });
        }
        if matches!(entry.content, PageContent::CodeNotPresent(_)) {
            return Err(MemError::NotPresent { addr });
        }
        let PageContent::Code(code) = &entry.content else {
            return Err(MemError::KindMismatch {
                addr,
                expected_code: true,
            });
        };
        code.get(&(addr.page_offset(PAGE_BYTES) as u16))
            .copied()
            .ok_or(MemError::NoInstruction { addr })
    }

    /// Returns every placed instruction on the executable code page
    /// containing `addr`, as `(page_offset, inst)` pairs in offset
    /// order — the bulk-read primitive behind fetch-side predecode
    /// caches, which decode a whole page in one map lookup instead of
    /// one [`AddressSpace::fetch_code`] per pc.
    ///
    /// # Errors
    ///
    /// Performs the same checks as [`AddressSpace::fetch_code`] and
    /// reports errors against `addr` itself: [`MemError::Unmapped`],
    /// [`MemError::PermissionDenied`] (missing execute permission) or
    /// [`MemError::KindMismatch`] (data page). An empty page is not an
    /// error — absent offsets surface as [`MemError::NoInstruction`]
    /// only when actually fetched.
    pub fn code_page_insts(
        &self,
        addr: VirtAddr,
    ) -> Result<impl Iterator<Item = (u16, Inst)> + '_, MemError> {
        let entry = self.entry(addr)?;
        if !entry.perms.can_exec() {
            return Err(MemError::PermissionDenied {
                addr,
                need: Perms::X,
                have: entry.perms,
            });
        }
        if matches!(entry.content, PageContent::CodeNotPresent(_)) {
            return Err(MemError::NotPresent { addr });
        }
        let PageContent::Code(code) = &entry.content else {
            return Err(MemError::KindMismatch {
                addr,
                expected_code: true,
            });
        };
        Ok(code.iter().map(|(&off, &inst)| (off, inst)))
    }

    /// Patches the instruction at `addr` at run time (the paper's §4.3
    /// software-emulation path). Requires write permission on the code
    /// page and performs COW accounting: patching a page shared with a
    /// forked process forces a private copy, which is exactly the memory
    /// overhead §5.5 charges against the software approach.
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::Unmapped`], [`MemError::PermissionDenied`]
    /// (missing write permission) or [`MemError::KindMismatch`] (data
    /// page).
    pub fn patch_code(&mut self, addr: VirtAddr, inst: Inst) -> Result<(), MemError> {
        // Siblings of a shared-code family must never observe this
        // patch (their pages COW away), nor may this space keep
        // revalidating the family's pre-patch decode.
        self.privatize_code();
        let pn = addr.page_number(PAGE_BYTES);
        let entry = self.pages.get_mut(&pn).ok_or(MemError::Unmapped { addr })?;
        if !entry.perms.can_write() {
            return Err(MemError::PermissionDenied {
                addr,
                need: Perms::W,
                have: entry.perms,
            });
        }
        if matches!(entry.content, PageContent::CodeNotPresent(_)) {
            return Err(MemError::NotPresent { addr });
        }
        let PageContent::Code(code) = &mut entry.content else {
            return Err(MemError::KindMismatch {
                addr,
                expected_code: true,
            });
        };
        if Arc::strong_count(code) > 1 {
            self.stats.cow_copies += 1;
        }
        Arc::make_mut(code).insert(addr.page_offset(PAGE_BYTES) as u16, inst);
        self.stats.code_patches += 1;
        self.code_version += 1;
        Ok(())
    }

    /// Returns every placed instruction whose address lies in
    /// `[start, start+len)`, in address order — the raw material for
    /// disassembly listings.
    pub fn code_in_range(&self, start: VirtAddr, len: u64) -> Vec<(VirtAddr, Inst)> {
        if len == 0 {
            return Vec::new();
        }
        let end = start + len;
        let mut out = Vec::new();
        for pn in Self::page_range(start, len) {
            let Some(entry) = self.pages.get(&pn) else {
                continue;
            };
            // Listings show the backing image even for not-present pages:
            // disassembly is a loader-eye view, not an architectural fetch.
            let (PageContent::Code(code) | PageContent::CodeNotPresent(code)) = &entry.content
            else {
                continue;
            };
            let page_base = VirtAddr::new(pn * PAGE_BYTES);
            for (&off, &inst) in code.iter() {
                let addr = page_base + u64::from(off);
                if addr >= start && addr < end {
                    out.push((addr, inst));
                }
            }
        }
        out.sort_by_key(|&(a, _)| a);
        out
    }

    /// Evicts the code page containing `addr` to the not-present state,
    /// retaining its backing instructions. Returns `true` if the page
    /// was resident (and is now evicted), `false` if it was already not
    /// present (a no-op).
    ///
    /// Eviction is architecturally invisible: the next fetch takes a
    /// [`MemError::NotPresent`] fault, [`AddressSpace::fault_in_code`]
    /// flips the page back, and the retried fetch sees identical
    /// instructions. [`AddressSpace::code_version`] is deliberately not
    /// bumped — fetch-side predecode for the page must instead be
    /// dropped by the caller, which is what makes eviction a probe of
    /// the cache-invalidation plumbing rather than of this model.
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::Unmapped`] or [`MemError::KindMismatch`]
    /// (data page).
    pub fn evict_code_page(&mut self, addr: VirtAddr) -> Result<bool, MemError> {
        // An evicted page must demand-fault on this space's next fetch;
        // a shared identity would let it execute from siblings' decode.
        self.privatize_code();
        let pn = addr.page_number(PAGE_BYTES);
        let entry = self.pages.get_mut(&pn).ok_or(MemError::Unmapped { addr })?;
        match &mut entry.content {
            PageContent::Data(_) => Err(MemError::KindMismatch {
                addr,
                expected_code: true,
            }),
            PageContent::CodeNotPresent(_) => Ok(false),
            PageContent::Code(code) => {
                entry.content = PageContent::CodeNotPresent(Arc::clone(code));
                Ok(true)
            }
        }
    }

    /// Evicts every code page overlapping `[start, start+len)` to the
    /// not-present state, skipping holes and data pages. Returns the
    /// number of pages that were resident and are now evicted — this is
    /// how a lazy loader "registers extents without mapping": install
    /// the module eagerly, then evict its text so first execution
    /// faults each page in on demand.
    pub fn evict_code_region(&mut self, start: VirtAddr, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        self.privatize_code();
        let mut evicted = 0;
        for pn in Self::page_range(start, len) {
            let Some(entry) = self.pages.get_mut(&pn) else {
                continue;
            };
            if let PageContent::Code(code) = &entry.content {
                entry.content = PageContent::CodeNotPresent(Arc::clone(code));
                evicted += 1;
            }
        }
        evicted
    }

    /// Handles a demand fault: makes the not-present code page
    /// containing `addr` resident again. Present pages are a no-op (a
    /// racing fault may already have been serviced).
    ///
    /// # Errors
    ///
    /// Fails with [`MemError::Unmapped`] if `addr` is a hole — a fault
    /// outside every registered extent is a genuine error, not a
    /// demand-fault — or [`MemError::KindMismatch`] on a data page.
    pub fn fault_in_code(&mut self, addr: VirtAddr) -> Result<(), MemError> {
        // Residency is per member: once members fault pages in and out
        // independently their fetch-side identities must part ways, or
        // a still-not-present sibling could execute through this
        // member's decode without ever taking its own fault.
        self.privatize_code();
        let pn = addr.page_number(PAGE_BYTES);
        let entry = self.pages.get_mut(&pn).ok_or(MemError::Unmapped { addr })?;
        match &mut entry.content {
            PageContent::Data(_) => Err(MemError::KindMismatch {
                addr,
                expected_code: true,
            }),
            PageContent::Code(_) => Ok(()),
            PageContent::CodeNotPresent(code) => {
                entry.content = PageContent::Code(Arc::clone(code));
                Ok(())
            }
        }
    }

    /// Removes every page overlapping `[start, start+len)` from the
    /// space entirely — the module-GC teardown path, as opposed to
    /// [`AddressSpace::evict_code_page`] which keeps the extent
    /// registered. Holes are skipped; returns the number of pages
    /// removed. The range may later be re-mapped by a fresh module.
    ///
    /// Like eviction this does not bump [`AddressSpace::code_version`]:
    /// a GC caller must invalidate fetch-side state itself (the honest
    /// route is minting a fresh [`AddressSpace::refresh_uid`]), which
    /// is exactly the invalidation obligation the difftest probes.
    pub fn unmap_region(&mut self, start: VirtAddr, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        self.privatize_code();
        let mut removed = 0;
        for pn in Self::page_range(start, len) {
            if self.pages.remove(&pn).is_some() {
                self.stats.pages_mapped -= 1;
                removed += 1;
            }
        }
        removed
    }

    /// Number of code pages currently resident (mapped, present); the
    /// quantity demand paging saves relative to eager loading. Evicted
    /// (not-present) pages and data pages are excluded.
    pub fn resident_code_pages(&self) -> u64 {
        self.pages
            .values()
            .filter(|e| matches!(e.content, PageContent::Code(_)))
            .count() as u64
    }

    /// Number of code pages whose extent is registered but which are
    /// architecturally not present.
    pub fn not_present_code_pages(&self) -> u64 {
        self.pages
            .values()
            .filter(|e| matches!(e.content, PageContent::CodeNotPresent(_)))
            .count() as u64
    }

    /// Mints a fresh [`AddressSpace::uid`] for this space, severing it
    /// from every fetch-side cache entry tagged with the old identity.
    ///
    /// This is the module-GC invalidation primitive: after
    /// [`AddressSpace::unmap_region`] recycles a VA range, predecoded
    /// pages keyed on the old `(uid, page)` would otherwise still
    /// revalidate if a later module reuses the range with the same
    /// code version. Retagging the space makes every stale entry
    /// unreachable at once.
    pub fn refresh_uid(&mut self) {
        self.uid = fresh_uid();
        // A full identity refresh also severs any shared code identity:
        // the caller is invalidating every cache entry for this space.
        self.code_uid = self.uid;
        self.code_shared = false;
    }

    /// Forks the address space: the child shares every page
    /// copy-on-write, like `fork(2)` for a prefork server (§5.5).
    ///
    /// The child's statistics start fresh (zero COW copies) and its
    /// mapped-page count equals the parent's.
    pub fn fork(&self, child_asid: u64) -> AddressSpace {
        let uid = fresh_uid();
        AddressSpace {
            asid: child_asid,
            uid,
            code_uid: uid,
            code_shared: false,
            pages: self.pages.clone(),
            stats: MemStats {
                pages_mapped: self.stats.pages_mapped,
                cow_copies: 0,
                code_patches: 0,
            },
            code_version: self.code_version,
        }
    }

    /// Forks the address space like [`AddressSpace::fork`], but keeps
    /// the *code identity* shared: the child inherits the parent's
    /// [`AddressSpace::code_uid`], so fetch-side predecode and
    /// superblock caches serve the whole family from one set of
    /// entries. This is the arena primitive behind fleet-scale tenancy:
    /// thousands of tenants forked from one loaded template cost one
    /// template's worth of decode, not thousands.
    ///
    /// Both sides are marked shared; the first code-state change on
    /// either (patch, eviction, fault-in, unmap, new code mapping)
    /// privatizes that member — see [`AddressSpace::code_uid`].
    pub fn fork_shared_code(&mut self, child_asid: u64) -> AddressSpace {
        self.code_shared = true;
        AddressSpace {
            asid: child_asid,
            uid: fresh_uid(),
            code_uid: self.code_uid,
            code_shared: true,
            pages: self.pages.clone(),
            stats: MemStats {
                pages_mapped: self.stats.pages_mapped,
                cow_copies: 0,
                code_patches: 0,
            },
            code_version: self.code_version,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynlink_isa::Reg;

    fn va(raw: u64) -> VirtAddr {
        VirtAddr::new(raw)
    }

    #[test]
    fn map_read_write_roundtrip() {
        let mut s = AddressSpace::new(0);
        s.map_region(va(0x1000), 0x1000, Perms::RW).unwrap();
        s.write_u64(va(0x1010), 0x1122_3344_5566_7788).unwrap();
        assert_eq!(s.read_u64(va(0x1010)).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(s.stats().pages_mapped, 1);
    }

    #[test]
    fn unmapped_access_fails() {
        let s = AddressSpace::new(0);
        assert!(matches!(
            s.read_u64(va(0x5000)),
            Err(MemError::Unmapped { .. })
        ));
    }

    #[test]
    fn write_requires_write_permission() {
        let mut s = AddressSpace::new(0);
        s.map_region(va(0x1000), 0x1000, Perms::R).unwrap();
        let err = s.write_u64(va(0x1000), 1).unwrap_err();
        assert!(matches!(err, MemError::PermissionDenied { need, .. } if need == Perms::W));
    }

    #[test]
    fn read_requires_read_permission() {
        let mut s = AddressSpace::new(0);
        s.map_region(va(0x1000), 0x1000, Perms::W).unwrap();
        assert!(matches!(
            s.read_u64(va(0x1000)),
            Err(MemError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn overlapping_map_rejected() {
        let mut s = AddressSpace::new(0);
        s.map_region(va(0x1000), 0x2000, Perms::RW).unwrap();
        assert!(matches!(
            s.map_region(va(0x2000), 0x1000, Perms::RW),
            Err(MemError::AlreadyMapped { .. })
        ));
    }

    #[test]
    fn cross_page_u64_roundtrip() {
        let mut s = AddressSpace::new(0);
        s.map_region(va(0x1000), 0x2000, Perms::RW).unwrap();
        // Straddles the 0x2000 page boundary.
        s.write_u64(va(0x1ffc), 0xaabb_ccdd_eeff_0011).unwrap();
        assert_eq!(s.read_u64(va(0x1ffc)).unwrap(), 0xaabb_ccdd_eeff_0011);
    }

    #[test]
    fn cross_page_write_is_atomic_on_failure() {
        let mut s = AddressSpace::new(0);
        s.map_region(va(0x1000), 0x1000, Perms::RW).unwrap();
        // Second page unmapped: nothing must be written to the first.
        assert!(s.write_u64(va(0x1ffc), u64::MAX).is_err());
        assert_eq!(s.read_u64(va(0x1ff0)).unwrap(), 0);
    }

    #[test]
    fn protect_changes_perms() {
        let mut s = AddressSpace::new(0);
        s.map_region(va(0x1000), 0x1000, Perms::R).unwrap();
        s.protect(va(0x1000), 0x1000, Perms::RW).unwrap();
        s.write_u64(va(0x1000), 1).unwrap();
        assert_eq!(s.perms_at(va(0x1000)), Some(Perms::RW));
        assert!(matches!(
            s.protect(va(0x9000), 0x1000, Perms::R),
            Err(MemError::Unmapped { .. })
        ));
    }

    #[test]
    fn fork_shares_until_write() {
        let mut parent = AddressSpace::new(1);
        parent.map_region(va(0x1000), 0x1000, Perms::RW).unwrap();
        parent.write_u64(va(0x1000), 42).unwrap();
        let mut child = parent.fork(2);
        assert_eq!(child.asid(), 2);
        assert_eq!(child.read_u64(va(0x1000)).unwrap(), 42);
        assert_eq!(child.stats().cow_copies, 0);

        child.write_u64(va(0x1000), 43).unwrap();
        assert_eq!(child.stats().cow_copies, 1);
        assert_eq!(
            parent.read_u64(va(0x1000)).unwrap(),
            42,
            "parent unaffected"
        );

        // A second write to the now-private page copies nothing.
        child.write_u64(va(0x1008), 44).unwrap();
        assert_eq!(child.stats().cow_copies, 1);
    }

    #[test]
    fn parent_write_after_fork_also_copies() {
        let mut parent = AddressSpace::new(1);
        parent.map_region(va(0x1000), 0x1000, Perms::RW).unwrap();
        let child = parent.fork(2);
        parent.write_u64(va(0x1000), 7).unwrap();
        assert_eq!(parent.stats().cow_copies, 1);
        assert_eq!(child.read_u64(va(0x1000)).unwrap(), 0);
    }

    #[test]
    fn code_place_fetch_roundtrip() {
        let mut s = AddressSpace::new(0);
        s.map_code_region(va(0x40_0000), 0x1000, Perms::RX).unwrap();
        s.place_code(va(0x40_0000), Inst::Nop).unwrap();
        s.place_code(va(0x40_0001), Inst::Ret).unwrap();
        assert_eq!(s.fetch_code(va(0x40_0000)).unwrap(), Inst::Nop);
        assert_eq!(s.fetch_code(va(0x40_0001)).unwrap(), Inst::Ret);
        assert!(matches!(
            s.fetch_code(va(0x40_0002)),
            Err(MemError::NoInstruction { .. })
        ));
    }

    #[test]
    fn fetch_requires_exec() {
        let mut s = AddressSpace::new(0);
        s.map_code_region(va(0x40_0000), 0x1000, Perms::R).unwrap();
        s.place_code(va(0x40_0000), Inst::Nop).unwrap();
        assert!(matches!(
            s.fetch_code(va(0x40_0000)),
            Err(MemError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn data_access_on_code_page_rejected() {
        let mut s = AddressSpace::new(0);
        s.map_code_region(va(0x40_0000), 0x1000, Perms::RWX)
            .unwrap();
        assert!(matches!(
            s.read_u64(va(0x40_0000)),
            Err(MemError::KindMismatch { .. })
        ));
        assert!(matches!(
            s.write_u64(va(0x40_0000), 0),
            Err(MemError::KindMismatch { .. })
        ));
    }

    #[test]
    fn code_access_on_data_page_rejected() {
        let mut s = AddressSpace::new(0);
        s.map_region(va(0x1000), 0x1000, Perms::RWX).unwrap();
        assert!(matches!(
            s.fetch_code(va(0x1000)),
            Err(MemError::KindMismatch { .. })
        ));
        assert!(matches!(
            s.place_code(va(0x1000), Inst::Nop),
            Err(MemError::KindMismatch { .. })
        ));
    }

    #[test]
    fn patch_requires_writable_text() {
        let mut s = AddressSpace::new(0);
        s.map_code_region(va(0x40_0000), 0x1000, Perms::RX).unwrap();
        s.place_code(va(0x40_0000), Inst::Nop).unwrap();
        assert!(matches!(
            s.patch_code(va(0x40_0000), Inst::Ret),
            Err(MemError::PermissionDenied { .. })
        ));
        // The paper's software emulation removes the protection first.
        s.protect(va(0x40_0000), 0x1000, Perms::RWX).unwrap();
        s.patch_code(va(0x40_0000), Inst::Ret).unwrap();
        assert_eq!(s.fetch_code(va(0x40_0000)).unwrap(), Inst::Ret);
        assert_eq!(s.stats().code_patches, 1);
    }

    #[test]
    fn patch_bumps_code_version() {
        let mut s = AddressSpace::new(0);
        s.map_code_region(va(0x40_0000), 0x1000, Perms::RWX)
            .unwrap();
        s.place_code(va(0x40_0000), Inst::Nop).unwrap();
        let v0 = s.code_version();
        s.patch_code(va(0x40_0000), Inst::Ret).unwrap();
        assert!(s.code_version() > v0);
    }

    #[test]
    fn patching_shared_code_page_forces_copy() {
        // The §5.5 scenario: prefork server patches call sites after fork.
        let mut parent = AddressSpace::new(1);
        parent
            .map_code_region(va(0x40_0000), 0x2000, Perms::RWX)
            .unwrap();
        parent.place_code(va(0x40_0000), Inst::Nop).unwrap();
        parent.place_code(va(0x40_1000), Inst::Nop).unwrap();

        let mut child = parent.fork(2);
        child
            .patch_code(
                va(0x40_0000),
                Inst::CallDirect {
                    target: va(0x50_0000),
                },
            )
            .unwrap();
        assert_eq!(child.stats().cow_copies, 1, "patched page copied");
        // Patching the same page again copies nothing further.
        child.patch_code(va(0x40_0004), Inst::Nop).unwrap();
        assert_eq!(child.stats().cow_copies, 1);
        // A different page costs another copy.
        child.patch_code(va(0x40_1000), Inst::Ret).unwrap();
        assert_eq!(child.stats().cow_copies, 2);
        // Parent still sees original code.
        assert_eq!(parent.fetch_code(va(0x40_0000)).unwrap(), Inst::Nop);
    }

    #[test]
    fn place_code_before_fork_keeps_sharing() {
        // Patching *before* fork retains COW (paper §2.3).
        let mut parent = AddressSpace::new(1);
        parent
            .map_code_region(va(0x40_0000), 0x1000, Perms::RWX)
            .unwrap();
        parent.place_code(va(0x40_0000), Inst::Nop).unwrap();
        parent.patch_code(va(0x40_0000), Inst::Ret).unwrap();
        let child = parent.fork(2);
        assert_eq!(child.stats().cow_copies, 0);
        assert_eq!(child.fetch_code(va(0x40_0000)).unwrap(), Inst::Ret);
    }

    #[test]
    fn read_write_bytes_bulk() {
        let mut s = AddressSpace::new(0);
        s.map_region(va(0x1000), 0x3000, Perms::RW).unwrap();
        let src: Vec<u8> = (0..9000u32).map(|i| (i % 251) as u8).collect();
        s.write_bytes(va(0x1100), &src).unwrap();
        let mut dst = vec![0u8; src.len()];
        s.read_bytes(va(0x1100), &mut dst).unwrap();
        assert_eq!(src, dst);
    }

    #[test]
    fn empty_rw_is_noop() {
        let mut s = AddressSpace::new(0);
        s.write_bytes(va(0x1000), &[]).unwrap();
        s.read_bytes(va(0x1000), &mut []).unwrap();
    }

    #[test]
    fn mem_stats_cow_bytes() {
        let stats = MemStats {
            pages_mapped: 10,
            cow_copies: 3,
            code_patches: 0,
        };
        assert_eq!(stats.cow_bytes(), 3 * PAGE_BYTES);
    }

    #[test]
    fn code_in_range_lists_in_address_order() {
        let mut s = AddressSpace::new(0);
        s.map_code_region(va(0x40_0000), 0x3000, Perms::RX).unwrap();
        s.place_code(va(0x40_2000), Inst::Ret).unwrap();
        s.place_code(va(0x40_0000), Inst::Nop).unwrap();
        s.place_code(va(0x40_0fff), Inst::Halt).unwrap();
        let all = s.code_in_range(va(0x40_0000), 0x3000);
        assert_eq!(
            all,
            vec![
                (va(0x40_0000), Inst::Nop),
                (va(0x40_0fff), Inst::Halt),
                (va(0x40_2000), Inst::Ret),
            ]
        );
        // Range is half-open and clipped.
        let clipped = s.code_in_range(va(0x40_0000), 0x1000);
        assert_eq!(clipped.len(), 2);
        assert!(s.code_in_range(va(0x40_0000), 0).is_empty());
    }

    #[test]
    fn uid_is_fresh_for_new_fork_and_clone() {
        let a = AddressSpace::new(7);
        let b = AddressSpace::new(7);
        let fork = a.fork(7);
        let clone = a.clone();
        let uids = [a.uid(), b.uid(), fork.uid(), clone.uid()];
        for (i, x) in uids.iter().enumerate() {
            for y in &uids[i + 1..] {
                assert_ne!(x, y, "every space instance gets a distinct uid");
            }
        }
        // Same ASID throughout: uid is the disambiguator, not asid.
        assert_eq!(fork.asid(), 7);
        assert_eq!(clone.asid(), 7);
    }

    #[test]
    fn code_page_insts_lists_page_in_offset_order() {
        let mut s = AddressSpace::new(0);
        s.map_code_region(va(0x40_0000), 0x2000, Perms::RX).unwrap();
        s.place_code(va(0x40_0004), Inst::Ret).unwrap();
        s.place_code(va(0x40_0000), Inst::Nop).unwrap();
        s.place_code(va(0x40_1000), Inst::Halt).unwrap();
        let page: Vec<(u16, Inst)> = s.code_page_insts(va(0x40_0002)).unwrap().collect();
        assert_eq!(page, vec![(0, Inst::Nop), (4, Inst::Ret)]);
        // Empty page: fine, just no instructions.
        let mut s2 = AddressSpace::new(0);
        s2.map_code_region(va(0x50_0000), 0x1000, Perms::RX)
            .unwrap();
        assert_eq!(s2.code_page_insts(va(0x50_0000)).unwrap().count(), 0);
    }

    #[test]
    fn code_page_insts_checks_mirror_fetch_code() {
        let mut s = AddressSpace::new(0);
        assert!(matches!(
            s.code_page_insts(va(0x9000)).map(|_| ()),
            Err(MemError::Unmapped { .. })
        ));
        s.map_code_region(va(0x40_0000), 0x1000, Perms::R).unwrap();
        assert!(matches!(
            s.code_page_insts(va(0x40_0000)).map(|_| ()),
            Err(MemError::PermissionDenied { need, .. }) if need == Perms::X
        ));
        s.map_region(va(0x1000), 0x1000, Perms::RWX).unwrap();
        assert!(matches!(
            s.code_page_insts(va(0x1000)).map(|_| ()),
            Err(MemError::KindMismatch {
                expected_code: true,
                ..
            })
        ));
    }

    #[test]
    fn evict_fault_in_roundtrip_preserves_code() {
        let mut s = AddressSpace::new(0);
        s.map_code_region(va(0x40_0000), 0x1000, Perms::RX).unwrap();
        s.place_code(va(0x40_0000), Inst::Nop).unwrap();
        assert_eq!(s.resident_code_pages(), 1);

        assert!(s.evict_code_page(va(0x40_0000)).unwrap());
        assert_eq!(s.resident_code_pages(), 0);
        assert_eq!(s.not_present_code_pages(), 1);
        assert!(s.is_mapped(va(0x40_0000)), "evicted, not unmapped");
        assert!(matches!(
            s.fetch_code(va(0x40_0000)),
            Err(MemError::NotPresent { .. })
        ));
        assert!(matches!(
            s.code_page_insts(va(0x40_0000)).map(|_| ()),
            Err(MemError::NotPresent { .. })
        ));
        // Re-eviction is a no-op.
        assert!(!s.evict_code_page(va(0x40_0000)).unwrap());

        s.fault_in_code(va(0x40_0000)).unwrap();
        assert_eq!(s.resident_code_pages(), 1);
        assert_eq!(s.fetch_code(va(0x40_0000)).unwrap(), Inst::Nop);
        // Faulting a present page is a no-op, not an error.
        s.fault_in_code(va(0x40_0000)).unwrap();
    }

    #[test]
    fn fault_on_a_hole_still_errors() {
        let mut s = AddressSpace::new(0);
        assert!(matches!(
            s.fault_in_code(va(0x9000)),
            Err(MemError::Unmapped { .. })
        ));
        s.map_region(va(0x1000), 0x1000, Perms::RW).unwrap();
        assert!(matches!(
            s.fault_in_code(va(0x1000)),
            Err(MemError::KindMismatch { .. })
        ));
        assert!(matches!(
            s.evict_code_page(va(0x1000)),
            Err(MemError::KindMismatch { .. })
        ));
    }

    #[test]
    fn evict_region_counts_only_resident_code() {
        let mut s = AddressSpace::new(0);
        s.map_code_region(va(0x40_0000), 0x2000, Perms::RX).unwrap();
        s.map_region(va(0x40_2000), 0x1000, Perms::RW).unwrap();
        // 3 pages span: two code, one data; a second sweep evicts nothing.
        assert_eq!(s.evict_code_region(va(0x40_0000), 0x3000), 2);
        assert_eq!(s.evict_code_region(va(0x40_0000), 0x3000), 0);
        assert_eq!(s.evict_code_region(va(0x40_0000), 0), 0);
        assert_eq!(s.not_present_code_pages(), 2);
    }

    #[test]
    fn place_code_into_not_present_page_lands_in_backing_image() {
        let mut s = AddressSpace::new(0);
        s.map_code_region(va(0x40_0000), 0x1000, Perms::RX).unwrap();
        s.evict_code_page(va(0x40_0000)).unwrap();
        s.place_code(va(0x40_0000), Inst::Ret).unwrap();
        assert!(matches!(
            s.fetch_code(va(0x40_0000)),
            Err(MemError::NotPresent { .. })
        ));
        s.fault_in_code(va(0x40_0000)).unwrap();
        assert_eq!(s.fetch_code(va(0x40_0000)).unwrap(), Inst::Ret);
    }

    #[test]
    fn patch_code_on_not_present_page_is_rejected() {
        let mut s = AddressSpace::new(0);
        s.map_code_region(va(0x40_0000), 0x1000, Perms::RWX)
            .unwrap();
        s.evict_code_page(va(0x40_0000)).unwrap();
        assert!(matches!(
            s.patch_code(va(0x40_0000), Inst::Ret),
            Err(MemError::NotPresent { .. })
        ));
    }

    #[test]
    fn unmap_region_removes_pages_and_accounting() {
        let mut s = AddressSpace::new(0);
        s.map_code_region(va(0x40_0000), 0x2000, Perms::RX).unwrap();
        s.map_region(va(0x50_0000), 0x1000, Perms::RW).unwrap();
        assert_eq!(s.stats().pages_mapped, 3);
        // Unmap spans a hole between the two mappings: only real pages count.
        assert_eq!(s.unmap_region(va(0x40_0000), 0x2000), 2);
        assert_eq!(s.stats().pages_mapped, 1);
        assert!(!s.is_mapped(va(0x40_0000)));
        assert!(matches!(
            s.fetch_code(va(0x40_0000)),
            Err(MemError::Unmapped { .. })
        ));
        // The range can be re-mapped afresh (VA recycling).
        s.map_code_region(va(0x40_0000), 0x2000, Perms::RX).unwrap();
        assert_eq!(s.unmap_region(va(0x40_0000), 0), 0);
    }

    #[test]
    fn refresh_uid_mints_a_distinct_identity() {
        let mut s = AddressSpace::new(3);
        let before = s.uid();
        s.refresh_uid();
        assert_ne!(s.uid(), before);
        assert_eq!(s.asid(), 3, "asid is unchanged by retagging");
    }

    #[test]
    fn written_reg_uses_do_not_affect_mem() {
        // Sanity: instructions are stored by value, unrelated to perms.
        let mut s = AddressSpace::new(0);
        s.map_code_region(va(0), 0x1000, Perms::RX).unwrap();
        s.place_code(va(0), Inst::mov_imm(Reg::R0, 9)).unwrap();
        assert_eq!(s.fetch_code(va(0)).unwrap(), Inst::mov_imm(Reg::R0, 9));
    }
}
