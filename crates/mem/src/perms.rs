//! Page permissions.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// Page permission bits (read / write / execute).
///
/// # Examples
///
/// ```
/// use dynlink_mem::Perms;
///
/// let rx = Perms::R | Perms::X;
/// assert!(rx.can_exec());
/// assert!(!rx.can_write());
/// assert!(rx.contains(Perms::R));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms(u8);

impl Perms {
    /// No access.
    pub const NONE: Perms = Perms(0);
    /// Read.
    pub const R: Perms = Perms(1);
    /// Write.
    pub const W: Perms = Perms(2);
    /// Execute.
    pub const X: Perms = Perms(4);
    /// Read + write (data pages).
    pub const RW: Perms = Perms(1 | 2);
    /// Read + execute (text pages).
    pub const RX: Perms = Perms(1 | 4);
    /// Read + write + execute (what the paper's software emulation must
    /// grant to patch call sites — one of its security costs, §4.3).
    pub const RWX: Perms = Perms(1 | 2 | 4);

    /// Returns `true` if every bit of `other` is present in `self`.
    #[inline]
    pub const fn contains(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if the page may be read.
    #[inline]
    pub const fn can_read(self) -> bool {
        self.contains(Perms::R)
    }

    /// Returns `true` if the page may be written.
    #[inline]
    pub const fn can_write(self) -> bool {
        self.contains(Perms::W)
    }

    /// Returns `true` if the page may be executed.
    #[inline]
    pub const fn can_exec(self) -> bool {
        self.contains(Perms::X)
    }
}

impl BitOr for Perms {
    type Output = Perms;

    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitOrAssign for Perms {
    fn bitor_assign(&mut self, rhs: Perms) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.can_read() { 'r' } else { '-' },
            if self.can_write() { 'w' } else { '-' },
            if self.can_exec() { 'x' } else { '-' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_predicates() {
        assert!(Perms::RWX.contains(Perms::RW));
        assert!(!Perms::RW.contains(Perms::X));
        assert!(Perms::R.can_read());
        assert!(!Perms::R.can_write());
        assert!(Perms::X.can_exec());
        assert!(!Perms::NONE.can_read());
    }

    #[test]
    fn bitor_combines() {
        assert_eq!(Perms::R | Perms::W, Perms::RW);
        let mut p = Perms::R;
        p |= Perms::X;
        assert_eq!(p, Perms::RX);
    }

    #[test]
    fn display_unix_style() {
        assert_eq!(Perms::RWX.to_string(), "rwx");
        assert_eq!(Perms::RX.to_string(), "r-x");
        assert_eq!(Perms::NONE.to_string(), "---");
    }
}
