//! Conventional process address-space layout.
//!
//! Real systems load shared libraries far above the heap — further than
//! 2 GiB from the executable's call sites — which is why the paper's
//! naive software solution cannot encode patched `call rel32`
//! instructions without relocating every library (§2.3). The paper's
//! evaluation linker instead loads everything "within the 32-bit reach of
//! the patched call instructions" (§4.3). [`LibraryPlacement`] selects
//! between the two conventions.

use dynlink_isa::VirtAddr;

use crate::PAGE_BYTES;

/// Base address of the executable's text section (like `ld`'s default).
pub const EXE_TEXT_BASE: VirtAddr = VirtAddr::new(0x0040_0000);

/// Base address of the heap.
pub const HEAP_BASE: VirtAddr = VirtAddr::new(0x0200_0000);

/// Library area within rel32 reach of the executable (paper §4.3's
/// custom allocator).
pub const NEAR_LIB_BASE: VirtAddr = VirtAddr::new(0x1000_0000);

/// Conventional library area, far above the heap (out of rel32 reach).
pub const FAR_LIB_BASE: VirtAddr = VirtAddr::new(0x7f00_0000_0000);

/// Top of the downward-growing stack.
pub const STACK_TOP: VirtAddr = VirtAddr::new(0x7fff_f000_0000);

/// Default stack size in bytes.
pub const STACK_BYTES: u64 = 1 << 20;

/// Where shared libraries are placed in the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LibraryPlacement {
    /// Conventional layout: libraries far above the heap (> 2 GiB from
    /// the executable). Call-site patching to a direct `call rel32` is
    /// impossible here, which is the software approach's first obstacle
    /// (§2.3).
    #[default]
    Far,
    /// The paper's evaluation layout: all executable code within a
    /// contiguous 2 GiB so patched relative calls can reach (§4.3).
    Near,
}

impl LibraryPlacement {
    /// Base address of the library area under this placement.
    pub fn lib_base(self) -> VirtAddr {
        match self {
            LibraryPlacement::Far => FAR_LIB_BASE,
            LibraryPlacement::Near => NEAR_LIB_BASE,
        }
    }
}

/// A bump allocator handing out page-aligned, non-overlapping regions.
///
/// # Examples
///
/// ```
/// use dynlink_isa::VirtAddr;
/// use dynlink_mem::layout::RegionAllocator;
///
/// let mut alloc = RegionAllocator::new(VirtAddr::new(0x1000_0000));
/// let a = alloc.alloc(100);
/// let b = alloc.alloc(5000);
/// assert_eq!(a.as_u64(), 0x1000_0000);
/// assert_eq!(b.as_u64(), 0x1000_1000); // next page boundary
/// ```
#[derive(Debug, Clone)]
pub struct RegionAllocator {
    cursor: VirtAddr,
}

impl RegionAllocator {
    /// Creates an allocator starting at `base` (rounded up to a page).
    pub fn new(base: VirtAddr) -> Self {
        RegionAllocator {
            cursor: base.align_up(PAGE_BYTES),
        }
    }

    /// Allocates `len` bytes, returning the page-aligned start address.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or the cursor overflows.
    pub fn alloc(&mut self, len: u64) -> VirtAddr {
        assert!(len > 0, "cannot allocate an empty region");
        let start = self.cursor;
        self.cursor = (start + len).align_up(PAGE_BYTES);
        start
    }

    /// Allocates `len` bytes with an extra random page-granular offset in
    /// `[0, slide_pages]` — a simple ASLR model. The caller supplies the
    /// randomness (`slide` in pages) so this crate stays RNG-free.
    pub fn alloc_with_slide(&mut self, len: u64, slide_pages: u64) -> VirtAddr {
        self.cursor += slide_pages * PAGE_BYTES;
        self.alloc(len)
    }

    /// The next address that would be returned.
    pub fn cursor(&self) -> VirtAddr {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_ordered() {
        assert!(EXE_TEXT_BASE < HEAP_BASE);
        assert!(HEAP_BASE < NEAR_LIB_BASE);
        assert!(NEAR_LIB_BASE < FAR_LIB_BASE);
        assert!(FAR_LIB_BASE < STACK_TOP);
    }

    #[test]
    fn near_libs_reachable_far_libs_not() {
        let call_site = EXE_TEXT_BASE + 0x1000;
        assert!(call_site.in_rel32_range(NEAR_LIB_BASE + 0x1000));
        assert!(!call_site.in_rel32_range(FAR_LIB_BASE + 0x1000));
    }

    #[test]
    fn placement_selects_base() {
        assert_eq!(LibraryPlacement::Far.lib_base(), FAR_LIB_BASE);
        assert_eq!(LibraryPlacement::Near.lib_base(), NEAR_LIB_BASE);
        assert_eq!(LibraryPlacement::default(), LibraryPlacement::Far);
    }

    #[test]
    fn allocator_is_page_aligned_and_disjoint() {
        let mut alloc = RegionAllocator::new(VirtAddr::new(0x1_0001));
        let a = alloc.alloc(1);
        assert_eq!(a.page_offset(PAGE_BYTES), 0);
        let b = alloc.alloc(PAGE_BYTES + 1);
        assert_eq!(b, a + PAGE_BYTES);
        let c = alloc.alloc(16);
        assert_eq!(c, b + 2 * PAGE_BYTES);
    }

    #[test]
    fn slide_offsets_allocation() {
        let mut alloc = RegionAllocator::new(VirtAddr::new(0x1000));
        let a = alloc.alloc_with_slide(64, 3);
        assert_eq!(a.as_u64(), 0x1000 + 3 * PAGE_BYTES);
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn zero_alloc_panics() {
        RegionAllocator::new(VirtAddr::new(0)).alloc(0);
    }
}
