//! Model-based property tests for the copy-on-write address space.
//!
//! A reference model (`HashMap<u64, u8>` per space) is driven with the
//! same random operation sequence — writes, reads, forks and
//! post-fork writes — and must always agree with the real
//! implementation. COW accounting invariants are checked along the way.
//! Sequences come from seeded `dynlink_rng` loops, so every run is
//! deterministic.

use std::collections::HashMap;

use dynlink_isa::VirtAddr;
use dynlink_mem::{AddressSpace, Perms, PAGE_BYTES};
use dynlink_rng::Rng;

const REGION_BASE: u64 = 0x10_000;
const REGION_LEN: u64 = 8 * PAGE_BYTES;

#[derive(Debug, Clone)]
enum Op {
    /// Write `len` bytes of `value` at `offset` in space `who`.
    Write {
        who: usize,
        offset: u64,
        len: u8,
        value: u8,
    },
    /// Read back and compare at `offset` in space `who`.
    Read { who: usize, offset: u64, len: u8 },
    /// Fork the given space (up to a small limit).
    Fork { who: usize },
}

fn random_op(rng: &mut Rng) -> Op {
    let offset = rng.gen_range(0..(REGION_LEN - 300));
    // Weighted 4:3:1 like the original strategy.
    match rng.next_below(8) {
        0..=3 => Op::Write {
            who: rng.gen_index(0..4),
            offset,
            len: rng.gen_range(1..64) as u8,
            value: rng.next_u64() as u8,
        },
        4..=6 => Op::Read {
            who: rng.gen_index(0..4),
            offset,
            len: rng.gen_range(1..64) as u8,
        },
        _ => Op::Fork {
            who: rng.gen_index(0..4),
        },
    }
}

/// Forked spaces behave exactly like independent byte maps.
#[test]
fn cow_spaces_match_reference_model() {
    let rng = Rng::seed_from_u64(0x3e3_0001);
    for case in 0..64 {
        let mut rng = rng.derive(case);
        let ops: Vec<Op> = (0..rng.gen_index(1..120))
            .map(|_| random_op(&mut rng))
            .collect();

        let mut root = AddressSpace::new(0);
        root.map_region(VirtAddr::new(REGION_BASE), REGION_LEN, Perms::RW)
            .unwrap();
        let mut spaces = vec![root];
        let mut models: Vec<HashMap<u64, u8>> = vec![HashMap::new()];

        for op in ops {
            match op {
                Op::Write {
                    who,
                    offset,
                    len,
                    value,
                } => {
                    let who = who % spaces.len();
                    let buf = vec![value; len as usize];
                    spaces[who]
                        .write_bytes(VirtAddr::new(REGION_BASE + offset), &buf)
                        .unwrap();
                    for i in 0..u64::from(len) {
                        models[who].insert(offset + i, value);
                    }
                }
                Op::Read { who, offset, len } => {
                    let who = who % spaces.len();
                    let mut buf = vec![0u8; len as usize];
                    spaces[who]
                        .read_bytes(VirtAddr::new(REGION_BASE + offset), &mut buf)
                        .unwrap();
                    for (i, &b) in buf.iter().enumerate() {
                        let want = models[who].get(&(offset + i as u64)).copied().unwrap_or(0);
                        assert_eq!(b, want, "space {} at +{}", who, offset + i as u64);
                    }
                }
                Op::Fork { who } => {
                    if spaces.len() >= 4 {
                        continue;
                    }
                    let who = who % spaces.len();
                    let child = spaces[who].fork(spaces.len() as u64);
                    let model = models[who].clone();
                    spaces.push(child);
                    models.push(model);
                }
            }
        }
    }
}

/// COW copies are bounded by the number of pages written after a
/// fork, and a space that never writes never copies.
#[test]
fn cow_copy_accounting_is_bounded() {
    let rng = Rng::seed_from_u64(0x3e3_0002);
    for case in 0..64 {
        let mut rng = rng.derive(case);
        let write_pages: Vec<u64> = (0..rng.gen_index(0..20))
            .map(|_| rng.gen_range(0..8))
            .collect();

        let mut parent = AddressSpace::new(0);
        parent
            .map_region(VirtAddr::new(REGION_BASE), REGION_LEN, Perms::RW)
            .unwrap();
        // Touch every page so the parent owns private copies.
        for p in 0..8u64 {
            parent
                .write_u64(VirtAddr::new(REGION_BASE + p * PAGE_BYTES), p)
                .unwrap();
        }
        let mut child = parent.fork(1);
        let reader = parent.fork(2);

        let distinct: std::collections::HashSet<u64> = write_pages.iter().copied().collect();
        for &p in &write_pages {
            child
                .write_u64(VirtAddr::new(REGION_BASE + p * PAGE_BYTES + 64), 7)
                .unwrap();
        }
        assert_eq!(child.stats().cow_copies, distinct.len() as u64);
        assert_eq!(reader.stats().cow_copies, 0);
        // Parent data is untouched by child writes.
        for p in 0..8u64 {
            assert_eq!(
                parent
                    .read_u64(VirtAddr::new(REGION_BASE + p * PAGE_BYTES))
                    .unwrap(),
                p
            );
        }
    }
}

/// u64 round-trips at arbitrary (possibly straddling) offsets.
#[test]
fn u64_roundtrip_anywhere() {
    let rng = Rng::seed_from_u64(0x3e3_0003);
    for case in 0..256 {
        let mut rng = rng.derive(case);
        let offset = rng.gen_range(0..(REGION_LEN - 8));
        let value = rng.next_u64();
        let mut s = AddressSpace::new(0);
        s.map_region(VirtAddr::new(REGION_BASE), REGION_LEN, Perms::RW)
            .unwrap();
        s.write_u64(VirtAddr::new(REGION_BASE + offset), value)
            .unwrap();
        assert_eq!(
            s.read_u64(VirtAddr::new(REGION_BASE + offset)).unwrap(),
            value
        );
    }
}
